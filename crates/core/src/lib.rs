//! GCoDE core: the unified architecture+mapping design space, the
//! constraint-based search, system performance awareness and the
//! architecture zoo.
//!
//! This crate is the paper's primary contribution. The flow mirrors Fig. 5:
//!
//! 1. [`space::DesignSpace`] defines the fused co-inference space in which
//!    [`op::Op::Communicate`] is an ordinary operation;
//! 2. [`search::random_search`] runs Alg. 1 (with [`ea`] as the ablation
//!    baseline), scoring candidates through a [`estimate::CandidateEvaluator`](estimate::CandidateEvaluator);
//! 3. latency comes from [`estimate`] (LUT-style cost estimation) or from
//!    the trained [`predictor`] (GIN over the architecture graph), energy
//!    from [`estimate::estimate_device_energy`];
//! 4. accuracy comes from the one-shot [`supernet`] or the calibrated
//!    [`surrogate`] model;
//! 5. winners land in the [`zoo`], from which the runtime dispatcher picks.
//!
//! # Example
//!
//! ```
//! use gcode_core::arch::WorkloadProfile;
//! use gcode_core::estimate::AnalyticEvaluator;
//! use gcode_core::search::{random_search, SearchConfig};
//! use gcode_core::space::DesignSpace;
//! use gcode_hardware::SystemConfig;
//!
//! let space = DesignSpace::paper(WorkloadProfile::modelnet40());
//! let cfg = SearchConfig { iterations: 50, seed: 1, ..SearchConfig::default() };
//! let mut eval = AnalyticEvaluator {
//!     profile: space.profile,
//!     sys: SystemConfig::tx2_to_i7(40.0),
//!     accuracy_fn: |_| 0.92,
//! };
//! let result = random_search(&space, &cfg, &mut eval);
//! assert!(result.best().is_some());
//! ```

pub mod arch;
pub mod cost;
pub mod ea;
pub mod estimate;
pub mod lut;
pub mod op;
pub mod pareto;
pub mod predictor;
pub mod search;
pub mod space;
pub mod supernet;
pub mod surrogate;
pub mod zoo;
