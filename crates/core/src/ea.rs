//! Evolutionary-algorithm search baseline for the Fig. 10(a) ablation.
//!
//! The paper's finding: in the fused architecture+mapping space, an EA "gets
//! stuck in a cycle of identifying valid architectures" because mutation and
//! crossover keep producing invalid sequences (scored −1), even when the
//! initial population is seeded with valid candidates.

use crate::arch::Architecture;
use crate::eval::{Evaluator, Objective, SearchSession, SearchStrategy};
use crate::search::{ScoredArch, SearchConfig, SearchResult};
use crate::space::DesignSpace;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// EA hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EaConfig {
    /// Population size.
    pub population: usize,
    /// Tournament size for parent selection.
    pub tournament: usize,
    /// Per-offspring mutation probability.
    pub mutation_prob: f64,
    /// Slots perturbed per mutation. A naive EA explores the fused space
    /// with multi-point mutation; in a space where most sequences are
    /// invalid, this is precisely what makes it burn its budget (Fig. 10a).
    pub mutation_points: usize,
    /// Seed the initial population with *valid* architectures
    /// (the "EA+Valid initial" series of Fig. 10a).
    pub valid_init: bool,
}

impl Default for EaConfig {
    fn default() -> Self {
        Self {
            population: 20,
            tournament: 3,
            mutation_prob: 0.9,
            mutation_points: 3,
            valid_init: false,
        }
    }
}

/// Evolutionary search with the same evaluation budget semantics as
/// [`crate::search::RandomSearch`]: `cfg.iterations` candidate evaluations
/// total, history records the running best score. The initial population
/// is evaluated in `cfg.batch_size` batches; the generational loop is
/// inherently sequential but still benefits from the session's memo cache
/// whenever crossover/mutation reproduce an already-scored candidate.
#[derive(Debug, Clone, Copy)]
pub struct Ea {
    /// Shared search hyper-parameters (budget, seed, zoo size).
    pub cfg: SearchConfig,
    /// EA-specific hyper-parameters.
    pub ea: EaConfig,
}

impl Ea {
    /// Builds the strategy from its hyper-parameters.
    pub fn new(cfg: SearchConfig, ea: EaConfig) -> Self {
        Self { cfg, ea }
    }
}

/// Sentinel entry for a structurally invalid sequence: it costs a full
/// evaluation slot but never reaches the evaluator.
fn invalid_candidate(arch: Architecture) -> ScoredArch {
    ScoredArch {
        arch,
        score: -1.0,
        accuracy: 0.0,
        latency_s: f64::INFINITY,
        energy_j: f64::INFINITY,
    }
}

/// Scores one candidate the way the EA sees it.
fn score_candidate(
    session: &mut SearchSession<'_>,
    objective: &Objective,
    arch: Architecture,
    misses: &mut usize,
) -> ScoredArch {
    if arch.validate(&session.space().profile).is_err() {
        return invalid_candidate(arch);
    }
    let m = session.evaluate(&arch);
    if !objective.feasible(&m) {
        *misses += 1;
    }
    objective.scored(arch, m)
}

impl SearchStrategy for Ea {
    fn search(&self, session: &mut SearchSession<'_>) -> SearchResult {
        let (cfg, ea) = (&self.cfg, &self.ea);
        let objective = session.objective();
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0xEA);
        let mut history = Vec::with_capacity(cfg.iterations);
        let mut best_so_far = f64::NEG_INFINITY;
        let mut constraint_misses = 0usize;
        let mut zoo: Vec<ScoredArch> = Vec::new();

        // Initial population, evaluated in batches.
        let mut budget = cfg.iterations;
        let mut validity_draws = 0usize;
        let init_len = ea.population.min(budget);
        let mut initial = Vec::with_capacity(init_len);
        for _ in 0..init_len {
            let arch = if ea.valid_init {
                let (a, draws) = session.space().sample_valid(&mut rng, 100_000);
                validity_draws += draws;
                a
            } else {
                session.space().sample_ops(&mut rng)
            };
            initial.push(arch);
        }
        let validity: Vec<bool> =
            initial.iter().map(|a| a.validate(&session.space().profile).is_ok()).collect();
        let valid: Vec<Architecture> =
            initial.iter().zip(&validity).filter(|(_, ok)| **ok).map(|(a, _)| a.clone()).collect();
        // Batched evaluation (honoring cfg.batch_size) covers the whole
        // valid initial population; the results are consumed directly
        // (never re-requested), so each member costs exactly one
        // evaluation even with memoization off.
        let mut valid_metrics = Vec::with_capacity(valid.len());
        for chunk in valid.chunks(cfg.batch_size.max(1)) {
            valid_metrics.extend(session.evaluate_batch(chunk));
        }
        let mut valid_metrics = valid_metrics.into_iter();
        let mut population: Vec<ScoredArch> = Vec::with_capacity(init_len);
        for (arch, is_valid) in initial.into_iter().zip(validity) {
            let scored = if is_valid {
                let m = valid_metrics.next().expect("one batch result per valid member");
                if !objective.feasible(&m) {
                    constraint_misses += 1;
                }
                objective.scored(arch, m)
            } else {
                invalid_candidate(arch)
            };
            budget -= 1;
            best_so_far = best_so_far.max(scored.score);
            history.push(best_so_far);
            population.push(scored);
        }

        // Generational loop.
        while budget > 0 {
            let parent_a = tournament(&population, ea.tournament, &mut rng);
            let parent_b = tournament(&population, ea.tournament, &mut rng);
            let mut child = session.space().crossover(&parent_a.arch, &parent_b.arch, &mut rng);
            if rng.gen_bool(ea.mutation_prob) {
                for _ in 0..ea.mutation_points.max(1) {
                    child = session.space().mutate(&child, &mut rng);
                }
            }
            let scored = score_candidate(session, &objective, child, &mut constraint_misses);
            budget -= 1;
            best_so_far = best_so_far.max(scored.score);
            history.push(best_so_far);
            // Replace the worst member.
            if let Some((worst_idx, worst)) =
                population.iter().enumerate().min_by(|a, b| a.1.score.total_cmp(&b.1.score))
            {
                if scored.score > worst.score {
                    population[worst_idx] = scored;
                }
            }
        }

        for member in population {
            if member.score > -1.0 {
                zoo.push(member);
            }
        }
        zoo.sort_by(|a, b| b.score.total_cmp(&a.score));
        zoo.truncate(cfg.zoo_size);
        SearchResult { zoo, history, constraint_misses, validity_draws }
    }
}

/// Convenience wrapper: runs [`Ea`] through a fresh
/// [`SearchSession`].
pub fn evolutionary_search(
    space: &DesignSpace,
    cfg: &SearchConfig,
    ea: &EaConfig,
    objective: &Objective,
    evaluator: &dyn Evaluator,
) -> SearchResult {
    SearchSession::new(space, evaluator).with_objective(*objective).run(&Ea::new(*cfg, *ea))
}

fn tournament<'a>(population: &'a [ScoredArch], k: usize, rng: &mut impl Rng) -> &'a ScoredArch {
    let mut best: Option<&ScoredArch> = None;
    for _ in 0..k.max(1) {
        let cand = population.choose(rng).expect("non-empty population");
        if best.is_none() || cand.score > best.expect("set").score {
            best = Some(cand);
        }
    }
    best.expect("tournament winner")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::WorkloadProfile;
    use crate::eval::backend::AnalyticBackend;
    use crate::search::random_search;
    use gcode_hardware::SystemConfig;

    fn setup() -> (DesignSpace, SearchConfig, Objective) {
        let space = DesignSpace::paper(WorkloadProfile::modelnet40());
        let cfg = SearchConfig { iterations: 200, seed: 21, ..SearchConfig::default() };
        let objective = Objective {
            latency_constraint_s: 0.5,
            energy_constraint_j: 3.0,
            ..Objective::default()
        };
        (space, cfg, objective)
    }

    fn evaluator() -> AnalyticBackend<impl Fn(&Architecture) -> f64 + Sync> {
        AnalyticBackend {
            profile: WorkloadProfile::modelnet40(),
            sys: SystemConfig::tx2_to_i7(40.0),
            // Capacity-sensitive accuracy so the search has a real signal.
            accuracy_fn: |a: &Architecture| {
                let cap: usize = a
                    .ops()
                    .iter()
                    .map(|o| match o {
                        crate::op::Op::Combine { dim } => *dim,
                        crate::op::Op::Aggregate(_) => 16,
                        crate::op::Op::Sample(_) => 8,
                        _ => 0,
                    })
                    .sum();
                0.85 + 0.08 * (1.0 - (-(cap as f64) / 96.0).exp())
            },
        }
    }

    #[test]
    fn ea_history_monotone_and_budgeted() {
        let (space, cfg, objective) = setup();
        let eval = evaluator();
        let r = evolutionary_search(&space, &cfg, &EaConfig::default(), &objective, &eval);
        assert_eq!(r.history.len(), cfg.iterations);
        for w in r.history.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn random_search_leads_plain_ea_early() {
        // The Fig. 10a claim is about search *efficiency*: within a modest
        // trial budget the constraint-based random search is ahead, because
        // the EA burns early evaluations on invalid offspring (scored −1)
        // in the fused space. Checked at the paper's early checkpoints
        // under its tight constraints.
        let (space, mut cfg, mut objective) = setup();
        cfg.iterations = 300;
        objective.latency_constraint_s = 0.15;
        objective.energy_constraint_j = 1.0;
        let e1 = evaluator();
        let rand_result = random_search(&space, &cfg, &objective, &e1);
        let e2 = evaluator();
        let ea_result = evolutionary_search(&space, &cfg, &EaConfig::default(), &objective, &e2);
        for checkpoint in [50usize, 100] {
            assert!(
                rand_result.history[checkpoint - 1] >= ea_result.history[checkpoint - 1],
                "at {checkpoint} trials random ({:.3}) should lead EA ({:.3})",
                rand_result.history[checkpoint - 1],
                ea_result.history[checkpoint - 1]
            );
        }
    }

    #[test]
    fn valid_init_starts_above_minus_one() {
        let (space, cfg, objective) = setup();
        let eval = evaluator();
        let ea = EaConfig { valid_init: true, ..EaConfig::default() };
        let r = evolutionary_search(&space, &cfg, &ea, &objective, &eval);
        // With a valid initial population, some early candidate usually
        // passes constraints; at minimum the validity draws were spent.
        assert!(r.validity_draws > 0);
    }

    #[test]
    fn plain_ea_wastes_evaluations_on_invalid_candidates() {
        let (space, cfg, objective) = setup();
        let eval = evaluator();
        let r = evolutionary_search(&space, &cfg, &EaConfig::default(), &objective, &eval);
        // Scores of -1 dominate early history for the plain EA.
        assert!(r.history[0] <= 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let (space, cfg, objective) = setup();
        let e1 = evaluator();
        let e2 = evaluator();
        let r1 = evolutionary_search(&space, &cfg, &EaConfig::default(), &objective, &e1);
        let r2 = evolutionary_search(&space, &cfg, &EaConfig::default(), &objective, &e2);
        assert_eq!(r1.history, r2.history);
    }

    #[test]
    fn initial_population_is_evaluated_once_even_without_memoization() {
        // The batched init path must consume its own results: no member may
        // be evaluated twice just because the memo cache is off.
        use crate::eval::Evaluator;
        use std::sync::atomic::{AtomicU64, Ordering};

        struct Counting {
            calls: AtomicU64,
        }
        impl Evaluator for Counting {
            fn evaluate(&self, arch: &Architecture) -> crate::eval::Metrics {
                self.calls.fetch_add(1, Ordering::Relaxed);
                crate::eval::Metrics {
                    accuracy: 0.9,
                    latency_s: 0.001 * arch.len() as f64,
                    energy_j: 0.01,
                }
            }
        }

        let (space, mut cfg, objective) = setup();
        let ea = EaConfig { valid_init: true, population: 20, ..EaConfig::default() };
        cfg.iterations = 20; // init only: every slot is a population member
        let eval = Counting { calls: AtomicU64::new(0) };
        let mut session =
            SearchSession::new(&space, &eval).with_objective(objective).with_memoization(false);
        let r = session.run(&Ea::new(cfg, ea));
        assert_eq!(r.history.len(), 20);
        assert_eq!(eval.calls.load(Ordering::Relaxed), 20, "one evaluation per initial member");
    }
}
