//! Evolutionary-algorithm search baseline for the Fig. 10(a) ablation.
//!
//! The paper's finding: in the fused architecture+mapping space, an EA "gets
//! stuck in a cycle of identifying valid architectures" because mutation and
//! crossover keep producing invalid sequences (scored −1), even when the
//! initial population is seeded with valid candidates.

use crate::estimate::CandidateEvaluator;
use crate::search::{score, ScoredArch, SearchConfig, SearchResult};
use crate::space::DesignSpace;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// EA hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EaConfig {
    /// Population size.
    pub population: usize,
    /// Tournament size for parent selection.
    pub tournament: usize,
    /// Per-offspring mutation probability.
    pub mutation_prob: f64,
    /// Slots perturbed per mutation. A naive EA explores the fused space
    /// with multi-point mutation; in a space where most sequences are
    /// invalid, this is precisely what makes it burn its budget (Fig. 10a).
    pub mutation_points: usize,
    /// Seed the initial population with *valid* architectures
    /// (the "EA+Valid initial" series of Fig. 10a).
    pub valid_init: bool,
}

impl Default for EaConfig {
    fn default() -> Self {
        Self {
            population: 20,
            tournament: 3,
            mutation_prob: 0.9,
            mutation_points: 3,
            valid_init: false,
        }
    }
}

/// Runs an evolutionary search with the same evaluation budget semantics as
/// [`crate::search::random_search`]: `cfg.iterations` candidate evaluations
/// total, history records the running best score.
pub fn evolutionary_search(
    space: &DesignSpace,
    cfg: &SearchConfig,
    ea: &EaConfig,
    eval: &mut dyn CandidateEvaluator,
) -> SearchResult {
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0xEA);
    let mut history = Vec::with_capacity(cfg.iterations);
    let mut best_so_far = f64::NEG_INFINITY;
    let mut constraint_misses = 0usize;
    let mut zoo: Vec<ScoredArch> = Vec::new();

    let evaluate = |arch: crate::arch::Architecture,
                        eval: &mut dyn CandidateEvaluator,
                        misses: &mut usize|
     -> ScoredArch {
        if arch.validate(&space.profile).is_err() {
            return ScoredArch { arch, score: -1.0, accuracy: 0.0, latency_s: f64::INFINITY, energy_j: f64::INFINITY };
        }
        let latency_s = eval.latency_s(&arch);
        let energy_j = eval.device_energy_j(&arch);
        if latency_s < cfg.latency_constraint_s && energy_j < cfg.energy_constraint_j {
            let accuracy = eval.accuracy(&arch);
            ScoredArch {
                score: score(cfg, accuracy, latency_s, energy_j),
                arch,
                accuracy,
                latency_s,
                energy_j,
            }
        } else {
            *misses += 1;
            ScoredArch { arch, score: -1.0, accuracy: 0.0, latency_s, energy_j }
        }
    };

    // Initial population.
    let mut population: Vec<ScoredArch> = Vec::with_capacity(ea.population);
    let mut budget = cfg.iterations;
    let mut validity_draws = 0usize;
    while population.len() < ea.population && budget > 0 {
        let arch = if ea.valid_init {
            let (a, draws) = space.sample_valid(&mut rng, 100_000);
            validity_draws += draws;
            a
        } else {
            space.sample_ops(&mut rng)
        };
        let scored = evaluate(arch, eval, &mut constraint_misses);
        budget -= 1;
        best_so_far = best_so_far.max(scored.score);
        history.push(best_so_far);
        population.push(scored);
    }

    // Generational loop.
    while budget > 0 {
        let parent_a = tournament(&population, ea.tournament, &mut rng);
        let parent_b = tournament(&population, ea.tournament, &mut rng);
        let mut child = space.crossover(&parent_a.arch, &parent_b.arch, &mut rng);
        if rng.gen_bool(ea.mutation_prob) {
            for _ in 0..ea.mutation_points.max(1) {
                child = space.mutate(&child, &mut rng);
            }
        }
        let scored = evaluate(child, eval, &mut constraint_misses);
        budget -= 1;
        best_so_far = best_so_far.max(scored.score);
        history.push(best_so_far);
        // Replace the worst member.
        if let Some((worst_idx, worst)) = population
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.score.total_cmp(&b.1.score))
        {
            if scored.score > worst.score {
                population[worst_idx] = scored;
            }
        }
    }

    for member in population {
        if member.score > -1.0 {
            zoo.push(member);
        }
    }
    zoo.sort_by(|a, b| b.score.total_cmp(&a.score));
    zoo.truncate(cfg.zoo_size);
    SearchResult { zoo, history, constraint_misses, validity_draws }
}

fn tournament<'a>(
    population: &'a [ScoredArch],
    k: usize,
    rng: &mut impl Rng,
) -> &'a ScoredArch {
    let mut best: Option<&ScoredArch> = None;
    for _ in 0..k.max(1) {
        let cand = population.choose(rng).expect("non-empty population");
        if best.is_none() || cand.score > best.expect("set").score {
            best = Some(cand);
        }
    }
    best.expect("tournament winner")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{Architecture, WorkloadProfile};
    use crate::estimate::AnalyticEvaluator;
    use crate::search::random_search;
    use gcode_hardware::SystemConfig;

    fn setup() -> (DesignSpace, SearchConfig) {
        let space = DesignSpace::paper(WorkloadProfile::modelnet40());
        let cfg = SearchConfig {
            iterations: 200,
            latency_constraint_s: 0.5,
            energy_constraint_j: 3.0,
            seed: 21,
            ..SearchConfig::default()
        };
        (space, cfg)
    }

    fn evaluator() -> AnalyticEvaluator<impl FnMut(&Architecture) -> f64> {
        AnalyticEvaluator {
            profile: WorkloadProfile::modelnet40(),
            sys: SystemConfig::tx2_to_i7(40.0),
            // Capacity-sensitive accuracy so the search has a real signal.
            accuracy_fn: |a: &Architecture| {
                let cap: usize = a
                    .ops()
                    .iter()
                    .map(|o| match o {
                        crate::op::Op::Combine { dim } => *dim,
                        crate::op::Op::Aggregate(_) => 16,
                        crate::op::Op::Sample(_) => 8,
                        _ => 0,
                    })
                    .sum();
                0.85 + 0.08 * (1.0 - (-(cap as f64) / 96.0).exp())
            },
        }
    }

    #[test]
    fn ea_history_monotone_and_budgeted() {
        let (space, cfg) = setup();
        let mut eval = evaluator();
        let r = evolutionary_search(&space, &cfg, &EaConfig::default(), &mut eval);
        assert_eq!(r.history.len(), cfg.iterations);
        for w in r.history.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn random_search_beats_plain_ea() {
        // The Fig. 10a claim, checked end-to-end on the analytic evaluator.
        let (space, cfg) = setup();
        let mut e1 = evaluator();
        let rand_result = random_search(&space, &cfg, &mut e1);
        let mut e2 = evaluator();
        let ea_result =
            evolutionary_search(&space, &cfg, &EaConfig::default(), &mut e2);
        let rand_best = rand_result.history.last().copied().unwrap_or(-1.0);
        let ea_best = ea_result.history.last().copied().unwrap_or(-1.0);
        assert!(
            rand_best >= ea_best,
            "random should match or beat EA: {rand_best} vs {ea_best}"
        );
    }

    #[test]
    fn valid_init_starts_above_minus_one() {
        let (space, cfg) = setup();
        let mut eval = evaluator();
        let ea = EaConfig { valid_init: true, ..EaConfig::default() };
        let r = evolutionary_search(&space, &cfg, &ea, &mut eval);
        // With a valid initial population, some early candidate usually
        // passes constraints; at minimum the validity draws were spent.
        assert!(r.validity_draws > 0);
    }

    #[test]
    fn plain_ea_wastes_evaluations_on_invalid_candidates() {
        let (space, cfg) = setup();
        let mut eval = evaluator();
        let r = evolutionary_search(&space, &cfg, &EaConfig::default(), &mut eval);
        // Scores of -1 dominate early history for the plain EA.
        assert!(r.history[0] <= 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let (space, cfg) = setup();
        let mut e1 = evaluator();
        let mut e2 = evaluator();
        let r1 = evolutionary_search(&space, &cfg, &EaConfig::default(), &mut e1);
        let r2 = evolutionary_search(&space, &cfg, &EaConfig::default(), &mut e2);
        assert_eq!(r1.history, r2.history);
    }
}
