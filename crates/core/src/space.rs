//! The searchable co-inference design space: sampling, mutation and
//! function scale-down.

use crate::arch::{Architecture, WorkloadProfile};
use crate::op::{Op, SampleFn};
use gcode_nn::agg::AggMode;
use gcode_nn::pool::PoolMode;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The GNN co-inference design space `A` (Fig. 6): a supernet of
/// `num_layers` slots, each choosing one of the six operations with its
/// function setting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignSpace {
    /// Number of operation slots.
    pub num_layers: usize,
    /// Allowed `Combine` widths (paper: 16/32/64/128).
    pub combine_dims: Vec<usize>,
    /// Allowed `Sample` neighbor counts.
    pub sample_ks: Vec<usize>,
    /// Workload the space targets.
    pub profile: WorkloadProfile,
    /// Whether `Communicate` is a sampleable operation. `false` turns this
    /// into a *single-device* space — the HGNAS-style baseline setting
    /// where mapping is decided after the fact (Motivation ❸).
    pub allow_communicate: bool,
}

impl DesignSpace {
    /// The paper's space for a workload: 8 layers, dims {16,32,64,128},
    /// k ∈ {10, 20}.
    pub fn paper(profile: WorkloadProfile) -> Self {
        Self {
            num_layers: 8,
            combine_dims: vec![16, 32, 64, 128],
            sample_ks: vec![10, 20],
            profile,
            allow_communicate: true,
        }
    }

    /// The same space with `Communicate` removed — a single-device NAS
    /// space (HGNAS-style baseline).
    pub fn single_device(profile: WorkloadProfile) -> Self {
        Self { allow_communicate: false, ..Self::paper(profile) }
    }

    /// Uniformly samples one op for slot construction.
    pub fn sample_op(&self, rng: &mut impl Rng) -> Op {
        match rng.gen_range(0..6) {
            0 => {
                let k = *self.sample_ks.choose(rng).expect("non-empty ks");
                if rng.gen_bool(0.5) {
                    Op::Sample(SampleFn::Knn { k })
                } else {
                    Op::Sample(SampleFn::Random { k })
                }
            }
            1 => Op::Aggregate(*AggMode::ALL.choose(rng).expect("non-empty")),
            2 => {
                if self.allow_communicate {
                    Op::Communicate
                } else {
                    Op::Identity
                }
            }
            3 => Op::Combine { dim: *self.combine_dims.choose(rng).expect("non-empty dims") },
            4 => Op::GlobalPool(*PoolMode::ALL.choose(rng).expect("non-empty")),
            _ => Op::Identity,
        }
    }

    /// Samples an unvalidated op sequence (one op per slot).
    pub fn sample_ops(&self, rng: &mut impl Rng) -> Architecture {
        Architecture::new((0..self.num_layers).map(|_| self.sample_op(rng)).collect())
    }

    /// Samples until the validity check passes — the `while Check(Ops)` loop
    /// of Alg. 1. Returns the architecture and how many draws it took.
    ///
    /// # Panics
    ///
    /// Panics if no valid architecture is found within `max_tries` draws
    /// (with the paper's space this effectively never happens).
    pub fn sample_valid(&self, rng: &mut impl Rng, max_tries: usize) -> (Architecture, usize) {
        for attempt in 1..=max_tries {
            let arch = self.sample_ops(rng);
            if arch.validate(&self.profile).is_ok() {
                return (arch, attempt);
            }
        }
        panic!("no valid architecture within {max_tries} draws");
    }

    /// Mutates one random slot to a random op — the EA baseline's mutation
    /// operator. The result is *not* validity-checked (that is the point of
    /// Fig. 10a: plain EA keeps proposing invalid candidates).
    pub fn mutate(&self, arch: &Architecture, rng: &mut impl Rng) -> Architecture {
        let mut ops = arch.ops().to_vec();
        if ops.is_empty() {
            return self.sample_ops(rng);
        }
        let slot = rng.gen_range(0..ops.len());
        ops[slot] = self.sample_op(rng);
        Architecture::new(ops)
    }

    /// Single-point crossover of two parents (EA baseline).
    pub fn crossover(
        &self,
        a: &Architecture,
        b: &Architecture,
        rng: &mut impl Rng,
    ) -> Architecture {
        let n = a.len().min(b.len());
        if n == 0 {
            return a.clone();
        }
        let cut = rng.gen_range(0..n);
        let mut ops: Vec<Op> = a.ops()[..cut].to_vec();
        ops.extend_from_slice(&b.ops()[cut..]);
        Architecture::new(ops)
    }

    /// Proposes a scaled-down function variant: one `Combine` width or
    /// `Sample` k reduced one notch (Alg. 1 stage 2). Returns `None` if
    /// nothing can shrink.
    pub fn scale_down(&self, arch: &Architecture, rng: &mut impl Rng) -> Option<Architecture> {
        let mut candidates: Vec<usize> = Vec::new();
        for (i, op) in arch.ops().iter().enumerate() {
            match op {
                Op::Combine { dim } | Op::EdgeCombine { dim }
                    if self.combine_dims.iter().any(|&d| d < *dim) =>
                {
                    candidates.push(i);
                }
                Op::Sample(f) if self.sample_ks.iter().any(|&k| k < f.k()) => {
                    candidates.push(i);
                }
                _ => {}
            }
        }
        let &slot = candidates.choose(rng)?;
        let mut ops = arch.ops().to_vec();
        ops[slot] = match ops[slot] {
            Op::Combine { dim } => Op::Combine { dim: next_smaller(&self.combine_dims, dim)? },
            Op::EdgeCombine { dim } => {
                Op::EdgeCombine { dim: next_smaller(&self.combine_dims, dim)? }
            }
            Op::Sample(SampleFn::Knn { k }) => {
                Op::Sample(SampleFn::Knn { k: next_smaller(&self.sample_ks, k)? })
            }
            Op::Sample(SampleFn::Random { k }) => {
                Op::Sample(SampleFn::Random { k: next_smaller(&self.sample_ks, k)? })
            }
            other => other,
        };
        Some(Architecture::new(ops))
    }
}

fn next_smaller(options: &[usize], current: usize) -> Option<usize> {
    options.iter().copied().filter(|&d| d < current).max()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn space() -> DesignSpace {
        DesignSpace::paper(WorkloadProfile::modelnet40())
    }

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn sample_ops_has_layer_count() {
        let s = space();
        let arch = s.sample_ops(&mut rng(1));
        assert_eq!(arch.len(), 8);
    }

    #[test]
    fn sample_valid_always_validates() {
        let s = space();
        let mut r = rng(2);
        for _ in 0..50 {
            let (arch, _) = s.sample_valid(&mut r, 10_000);
            assert!(arch.validate(&s.profile).is_ok(), "invalid: {arch}");
        }
    }

    #[test]
    fn raw_sampling_often_invalid() {
        // The motivation for the Check loop: the fused space is littered
        // with invalid sequences.
        let s = space();
        let mut r = rng(3);
        let invalid =
            (0..500).filter(|_| s.sample_ops(&mut r).validate(&s.profile).is_err()).count();
        assert!(invalid > 200, "expected many invalid draws, got {invalid}/500");
    }

    #[test]
    fn mutation_changes_at_most_one_slot() {
        let s = space();
        let mut r = rng(4);
        let (arch, _) = s.sample_valid(&mut r, 10_000);
        let mutant = s.mutate(&arch, &mut r);
        let diffs = arch.ops().iter().zip(mutant.ops()).filter(|(a, b)| a != b).count();
        assert!(diffs <= 1);
        assert_eq!(mutant.len(), arch.len());
    }

    #[test]
    fn crossover_preserves_length() {
        let s = space();
        let mut r = rng(5);
        let a = s.sample_ops(&mut r);
        let b = s.sample_ops(&mut r);
        let c = s.crossover(&a, &b, &mut r);
        assert_eq!(c.len(), 8);
    }

    #[test]
    fn scale_down_shrinks_one_function() {
        let s = space();
        let arch = Architecture::new(vec![Op::Combine { dim: 128 }, Op::GlobalPool(PoolMode::Sum)]);
        let mut r = rng(6);
        let shrunk = s.scale_down(&arch, &mut r).expect("128 can shrink");
        match shrunk.ops()[0] {
            Op::Combine { dim } => assert_eq!(dim, 64),
            ref other => panic!("unexpected op {other:?}"),
        }
    }

    #[test]
    fn scale_down_none_at_minimum() {
        let s = space();
        let arch = Architecture::new(vec![
            Op::Combine { dim: 16 },
            Op::Sample(SampleFn::Knn { k: 10 }),
            Op::GlobalPool(PoolMode::Sum),
        ]);
        assert!(s.scale_down(&arch, &mut rng(7)).is_none());
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let s = space();
        let a = s.sample_ops(&mut rng(9));
        let b = s.sample_ops(&mut rng(9));
        assert_eq!(a, b);
    }
}

#[cfg(test)]
mod single_device_tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn single_device_space_never_communicates() {
        let s = DesignSpace::single_device(WorkloadProfile::modelnet40());
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        for _ in 0..100 {
            let (arch, _) = s.sample_valid(&mut rng, 100_000);
            assert_eq!(arch.num_communicates(), 0, "leaked communicate: {arch}");
        }
    }

    #[test]
    fn paper_space_does_communicate_sometimes() {
        let s = DesignSpace::paper(WorkloadProfile::modelnet40());
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let with_comm =
            (0..100).filter(|_| s.sample_valid(&mut rng, 100_000).0.num_communicates() > 0).count();
        assert!(with_comm > 20, "expected frequent splits, got {with_comm}/100");
    }
}
