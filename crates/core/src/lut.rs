//! The operation-latency lookup table (Fig. 7, "Operation Latency LUT").
//!
//! The paper "maintains an operation latency LUT across various devices,
//! with negligible construction overhead due to the limited number of valid
//! operations". [`OperationLut`] materializes that table for one workload
//! and system by enumerating every operation × function setting × shape
//! context the design space can produce; the cost estimator and the
//! predictor's enhanced features can then run off pure table lookups
//! (useful when the analytic cost model is replaced by real measurements).

use crate::arch::{Architecture, WorkloadProfile};
use crate::cost::{apply_op, ShapeState};
use crate::op::{Op, OpKind, Placement, SampleFn};
use crate::space::DesignSpace;
use gcode_hardware::SystemConfig;
use gcode_nn::agg::AggMode;
use gcode_nn::pool::PoolMode;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Lookup key: the op plus the shape facts its latency depends on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LutKey {
    /// The operation (function setting included).
    pub op: Op,
    /// Node count at the op's input (1 after pooling).
    pub nodes: usize,
    /// Feature width at the op's input.
    pub dim: usize,
    /// Graph degree at the op's input (0 if no graph).
    pub degree: usize,
    /// Whether features are per-edge at the op's input.
    pub edge_features: bool,
    /// Which side executes the op.
    pub placement: Placement,
}

/// Materialized per-operation latency table for one workload + system.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OperationLut {
    entries: BTreeMap<LutKey, f64>,
}

impl OperationLut {
    /// Builds the table by enumerating the space's operations over every
    /// reachable shape context: dims from `{in_dim} ∪ combine_dims`,
    /// degrees from `{provided} ∪ sample_ks`, node counts `{n, 1}`.
    pub fn build(space: &DesignSpace, sys: &SystemConfig) -> Self {
        let profile = &space.profile;
        let mut dims: Vec<usize> = space.combine_dims.clone();
        dims.push(profile.in_dim);
        dims.sort_unstable();
        dims.dedup();
        let mut degrees: Vec<usize> = space.sample_ks.clone();
        degrees.push(if profile.provides_graph { profile.provided_degree } else { 0 });
        degrees.sort_unstable();
        degrees.dedup();

        let mut ops: Vec<Op> = Vec::new();
        for &k in &space.sample_ks {
            ops.push(Op::Sample(SampleFn::Knn { k }));
            ops.push(Op::Sample(SampleFn::Random { k }));
        }
        for m in AggMode::ALL {
            ops.push(Op::Aggregate(m));
        }
        for &dim in &space.combine_dims {
            ops.push(Op::Combine { dim });
        }
        for m in PoolMode::ALL {
            ops.push(Op::GlobalPool(m));
        }
        ops.push(Op::Identity);

        let mut entries = BTreeMap::new();
        for &op in &ops {
            for &nodes in &[profile.num_nodes, 1usize] {
                // Post-pooling node ops are invalid; skip those contexts.
                if nodes == 1 && op.needs_nodes() {
                    continue;
                }
                for &dim in &dims {
                    for &degree in &degrees {
                        for placement in [Placement::Device, Placement::Edge] {
                            let state = ShapeState {
                                nodes,
                                dim,
                                degree,
                                has_graph: degree > 0,
                                pooled: nodes == 1,
                                edge_features: false,
                            };
                            let (cost, _) = apply_op(&op, state);
                            let proc = match placement {
                                Placement::Device => &sys.device,
                                Placement::Edge => &sys.edge,
                            };
                            entries.insert(
                                LutKey { op, nodes, dim, degree, edge_features: false, placement },
                                proc.latency(&cost),
                            );
                        }
                    }
                }
            }
        }
        Self { entries }
    }

    /// Number of table rows.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Latency of `op` at `state` on `placement`, if tabulated.
    pub fn lookup(&self, op: Op, state: &ShapeState, placement: Placement) -> Option<f64> {
        self.entries
            .get(&LutKey {
                op,
                nodes: state.nodes,
                dim: state.dim,
                degree: state.degree,
                edge_features: state.edge_features,
                placement,
            })
            .copied()
    }

    /// LUT-only latency estimate of an architecture: accumulate tabulated
    /// op latencies plus link transfer times — exactly the paper's cost
    /// estimation, expressed as table lookups. Ops whose context is not in
    /// the table (e.g. `EdgeCombine` baselines) fall back to the analytic
    /// model, so the estimate is total.
    pub fn estimate(
        &self,
        arch: &Architecture,
        profile: &WorkloadProfile,
        sys: &SystemConfig,
    ) -> f64 {
        // Walk the sequence tracking pre-op states for lookups.
        let placements = arch.placements();
        let mut state = ShapeState::initial(profile);
        let mut total = 0.0;
        for (op, &placement) in arch.ops().iter().zip(&placements) {
            if op.kind() == OpKind::Communicate {
                total += sys.link.transfer_time(state.transfer_bytes());
                state = apply_op(op, state).1;
                continue;
            }
            let seconds = self.lookup(*op, &state, placement).unwrap_or_else(|| {
                let (cost, _) = apply_op(op, state);
                let proc = match placement {
                    Placement::Device => &sys.device,
                    Placement::Edge => &sys.edge,
                };
                proc.latency(&cost)
            });
            total += seconds;
            state = apply_op(op, state).1;
        }
        if arch.output_placement() == Placement::Edge {
            total += sys.link.transfer_time(16);
        }
        total
    }

    /// All tabulated latencies in milliseconds — the population the
    /// predictor's global z-score normalization is fitted on.
    pub fn latencies_ms(&self) -> Vec<f64> {
        self.entries.values().map(|s| s * 1e3).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::estimate_latency;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn setup() -> (DesignSpace, SystemConfig) {
        (DesignSpace::paper(WorkloadProfile::modelnet40()), SystemConfig::tx2_to_i7(40.0))
    }

    #[test]
    fn construction_is_small() {
        let (space, sys) = setup();
        let lut = OperationLut::build(&space, &sys);
        // "negligible construction overhead due to the limited number of
        // valid operations": a few thousand rows at most.
        assert!(!lut.is_empty());
        assert!(lut.len() < 5_000, "LUT blew up: {}", lut.len());
    }

    #[test]
    fn lookup_matches_analytic_model() {
        let (space, sys) = setup();
        let lut = OperationLut::build(&space, &sys);
        let state = ShapeState {
            nodes: 1024,
            dim: 64,
            degree: 20,
            has_graph: true,
            pooled: false,
            edge_features: false,
        };
        let op = Op::Aggregate(AggMode::Max);
        let tabulated = lut.lookup(op, &state, Placement::Device).expect("tabulated");
        let (cost, _) = apply_op(&op, state);
        assert!((tabulated - sys.device.latency(&cost)).abs() < 1e-12);
    }

    #[test]
    fn estimate_agrees_with_cost_estimation_on_sampled_archs() {
        let (space, sys) = setup();
        let lut = OperationLut::build(&space, &sys);
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        for _ in 0..30 {
            let (arch, _) = space.sample_valid(&mut rng, 100_000);
            let via_lut = lut.estimate(&arch, &space.profile, &sys);
            let analytic = estimate_latency(&arch, &space.profile, &sys).total_s();
            assert!(
                (via_lut - analytic).abs() < 1e-9,
                "LUT {via_lut} vs analytic {analytic} for {arch}"
            );
        }
    }

    #[test]
    fn device_and_edge_rows_differ() {
        let (space, sys) = setup();
        let lut = OperationLut::build(&space, &sys);
        let state = ShapeState {
            nodes: 1024,
            dim: 3,
            degree: 20,
            has_graph: true,
            pooled: false,
            edge_features: false,
        };
        let op = Op::Sample(SampleFn::Knn { k: 20 });
        let dev = lut.lookup(op, &state, Placement::Device).expect("device row");
        let edg = lut.lookup(op, &state, Placement::Edge).expect("edge row");
        assert_ne!(dev, edg, "heterogeneity must be visible in the table");
    }

    #[test]
    fn missing_context_falls_back() {
        let (space, sys) = setup();
        let lut = OperationLut::build(&space, &sys);
        // EdgeCombine never appears in the searchable space's table…
        let arch = Architecture::new(vec![
            Op::Sample(SampleFn::Knn { k: 20 }),
            Op::EdgeCombine { dim: 64 },
            Op::Aggregate(AggMode::Max),
            Op::GlobalPool(PoolMode::Max),
        ]);
        // …but the estimate is still total and matches the analytic model.
        let via_lut = lut.estimate(&arch, &space.profile, &sys);
        let analytic = estimate_latency(&arch, &space.profile, &sys).total_s();
        assert!((via_lut - analytic).abs() < 1e-9);
    }

    #[test]
    fn latency_population_is_ms_scale() {
        let (space, sys) = setup();
        let lut = OperationLut::build(&space, &sys);
        let ms = lut.latencies_ms();
        assert_eq!(ms.len(), lut.len());
        assert!(ms.iter().all(|v| v.is_finite() && *v >= 0.0));
    }
}
