//! The evaluation-backend layer: fidelity-tagged measurement oracles and
//! the deterministic parallel batch driver.
//!
//! The paper prices thousands of candidates with a cheap LUT estimate and
//! closes the estimate-vs-measured gap with higher-fidelity measurement
//! (Sec. 3.5). This module makes that an explicit architecture instead of
//! scattered call sites: every oracle implements [`EvalBackend`] — an
//! [`Evaluator`] that also declares *what it is* ([`Fidelity`]) and *what
//! it costs* ([`EvalBackend::cost_hint`]) — so strategy code never names a
//! concrete estimator, and new oracles (the live TCP engine, say) register
//! without touching any search code.
//!
//! Three backends live in the workspace today:
//!
//! * [`AnalyticBackend`] (here) — LUT-style cost estimation plus the
//!   analytic energy model; the cheap screen.
//! * `gcode_sim::SimBackend` — the discrete-event co-inference simulator;
//!   the expensive "measured" oracle that sees runtime overheads.
//! * [`CascadeBackend`] (here) — multi-fidelity search: screens every
//!   batch with a cheap backend and re-prices only the top fraction with
//!   an expensive one.
//!
//! [`shard_batch`] is the parallel driver behind
//! [`Evaluator::evaluate_batch_workers`]: contiguous shards across scoped
//! worker threads, merged in input order, so serial and parallel runs are
//! bit-identical.

use crate::arch::{Architecture, WorkloadProfile};
use crate::cost::trace;
use crate::estimate::{breakdown_from_trace, energy_from_parts};
use crate::eval::{Evaluator, Metrics, Objective};
use gcode_hardware::SystemConfig;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// How trustworthy (and how expensive) a backend's numbers are, ordered
/// from cheapest estimate to ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Fidelity {
    /// Closed-form LUT accumulation — no runtime overheads.
    Analytic,
    /// A trained predictor interpolating measured data.
    Predicted,
    /// Discrete-event simulation with runtime overheads charged.
    Simulated,
    /// Live measurement on real hardware (the TCP engine).
    Measured,
}

/// An [`Evaluator`] that declares its fidelity tier and relative cost, the
/// unit every oracle plugs into. `Sync` is inherited from [`Evaluator`],
/// so any backend can be sharded by the parallel driver or stacked under a
/// [`CascadeBackend`].
pub trait EvalBackend: Evaluator {
    /// The fidelity tier of the metrics this backend produces.
    fn fidelity(&self) -> Fidelity;

    /// Rough per-candidate cost relative to the analytic estimator (1.0).
    /// Cascades use this to report how much work screening saved.
    fn cost_hint(&self) -> f64;

    /// Short human-readable name for reports and CLI output.
    fn name(&self) -> &str;
}

/// Shards `archs` into `workers` contiguous chunks, evaluates each chunk
/// on its own scoped thread via [`Evaluator::evaluate_batch`], and merges
/// the results in input order.
///
/// Determinism: shard boundaries depend only on `archs.len()` and
/// `workers`, the merge consumes join handles in spawn order, and each
/// candidate's metrics are computed by the same pointwise code that a
/// serial run would execute — so the output is bit-identical to
/// `evaluator.evaluate_batch(archs)` for any pointwise backend, regardless
/// of thread scheduling.
pub fn shard_batch<E: Evaluator + ?Sized>(
    evaluator: &E,
    archs: &[Architecture],
    workers: usize,
) -> Vec<Metrics> {
    let workers = workers.max(1).min(archs.len());
    if workers <= 1 {
        return evaluator.evaluate_batch(archs);
    }
    let shard_len = archs.len().div_ceil(workers);
    crossbeam::thread::scope(|s| {
        let handles: Vec<_> = archs
            .chunks(shard_len)
            .map(|shard| s.spawn(move |_| evaluator.evaluate_batch(shard)))
            .collect();
        let mut merged = Vec::with_capacity(archs.len());
        for handle in handles {
            merged.extend(handle.join().expect("evaluation worker panicked"));
        }
        merged
    })
    .expect("worker scope")
}

/// [`EvalBackend`] backed by the analytic cost/energy estimators plus a
/// user-supplied accuracy function (surrogate model or supernet query) —
/// the paper's LUT-style estimate and the cheap tier of every cascade.
/// Latency and energy come from a single shape trace per candidate.
pub struct AnalyticBackend<F: Fn(&Architecture) -> f64 + Sync> {
    /// Workload being optimized for.
    pub profile: WorkloadProfile,
    /// Target system.
    pub sys: SystemConfig,
    /// Accuracy callback.
    pub accuracy_fn: F,
}

impl<F: Fn(&Architecture) -> f64 + Sync> Evaluator for AnalyticBackend<F> {
    fn evaluate(&self, arch: &Architecture) -> Metrics {
        let traced = trace(arch, &self.profile);
        let b = breakdown_from_trace(&traced, arch, &self.sys);
        Metrics {
            accuracy: (self.accuracy_fn)(arch),
            latency_s: b.total_s(),
            energy_j: energy_from_parts(&traced, &b, arch, &self.sys),
        }
    }
}

impl<F: Fn(&Architecture) -> f64 + Sync> EvalBackend for AnalyticBackend<F> {
    fn fidelity(&self) -> Fidelity {
        Fidelity::Analytic
    }

    fn cost_hint(&self) -> f64 {
        1.0
    }

    fn name(&self) -> &str {
        "analytic"
    }
}

/// How many evaluations each tier of a [`CascadeBackend`] has performed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CascadeStats {
    /// Candidates priced by the cheap (screening) backend.
    pub cheap_evals: u64,
    /// Candidates re-priced by the expensive backend.
    pub expensive_evals: u64,
}

impl CascadeStats {
    /// Fraction of screened candidates that were re-priced expensively
    /// (0 when nothing was screened).
    pub fn escalation_rate(&self) -> f64 {
        if self.cheap_evals == 0 {
            0.0
        } else {
            self.expensive_evals as f64 / self.cheap_evals as f64
        }
    }
}

/// Multi-fidelity backend: screens every batch with the cheap backend,
/// ranks the candidates under the screening [`Objective`], and re-prices
/// only the top `keep_frac` fraction with the expensive backend. The rest
/// keep their cheap metrics — exactly the paper's "estimate thousands,
/// measure the promising few" economy, packaged as just another backend so
/// strategies stay oblivious.
///
/// Because the cheap tier is optimistic (it misses the runtime overheads
/// the expensive tier charges), a fixed top-k cut would systematically
/// leave a just-below-cutoff candidate holding an inflated cheap score
/// above every honestly re-priced one. After the top-k pass the cascade
/// therefore keeps escalating the batch's current argmax until the
/// best-scoring candidate of the batch is expensive-priced — so a batch's
/// winner (and hence the search winner, which is some batch's argmax)
/// always carries top-tier metrics. Candidates that never led their batch
/// may retain cheap metrics; only escalation order, not results, depends
/// on the tiers' relative bias. Setting `keep_frac` to 0 with
/// [`CascadeBackend::with_min_keep`] 0 disables escalation entirely
/// (pure-cheap screening mode).
///
/// Determinism: ranking sorts by screening score with the batch index as
/// tie-break, and both tiers run through
/// [`Evaluator::evaluate_batch_workers`] on the *whole* batch — so results
/// never depend on worker count. They do depend on batch composition
/// (screening is batch-scoped by design), so runs are reproducible for a
/// fixed `SearchConfig::batch_size`.
///
/// Single-candidate lookups ([`Evaluator::evaluate`], e.g. Alg. 1's
/// stage-2 tuning probes) always go straight to the expensive backend:
/// screening a batch of one is pure overhead.
pub struct CascadeBackend<'a> {
    cheap: &'a dyn EvalBackend,
    expensive: &'a dyn EvalBackend,
    objective: Objective,
    keep_frac: f64,
    min_keep: usize,
    name: String,
    cheap_evals: AtomicU64,
    expensive_evals: AtomicU64,
}

impl<'a> CascadeBackend<'a> {
    /// Builds a cascade screening with `cheap` and re-pricing the top
    /// quarter of each batch (by `objective` score) with `expensive`.
    pub fn new(
        cheap: &'a dyn EvalBackend,
        expensive: &'a dyn EvalBackend,
        objective: Objective,
    ) -> Self {
        debug_assert!(
            cheap.cost_hint() <= expensive.cost_hint(),
            "cascade tiers look inverted: {} costs more than {}",
            cheap.name(),
            expensive.name()
        );
        Self {
            name: format!("cascade({}->{})", cheap.name(), expensive.name()),
            cheap,
            expensive,
            objective,
            keep_frac: 0.25,
            min_keep: 1,
            cheap_evals: AtomicU64::new(0),
            expensive_evals: AtomicU64::new(0),
        }
    }

    /// Sets the fraction of each batch re-priced expensively (clamped to
    /// `[0, 1]`; at least `min_keep` candidates are always re-priced).
    #[must_use]
    pub fn with_keep_frac(mut self, keep_frac: f64) -> Self {
        self.keep_frac = keep_frac.clamp(0.0, 1.0);
        self
    }

    /// Sets the minimum number of candidates re-priced per batch
    /// (default 1; 0 allows pure-cheap batches at `keep_frac` 0).
    #[must_use]
    pub fn with_min_keep(mut self, min_keep: usize) -> Self {
        self.min_keep = min_keep;
        self
    }

    /// Per-tier evaluation counters so far.
    pub fn stats(&self) -> CascadeStats {
        CascadeStats {
            cheap_evals: self.cheap_evals.load(Ordering::Relaxed),
            expensive_evals: self.expensive_evals.load(Ordering::Relaxed),
        }
    }

    /// How many of a batch of `n` survive screening.
    fn keep_of(&self, n: usize) -> usize {
        ((self.keep_frac * n as f64).ceil() as usize).max(self.min_keep).min(n)
    }

    /// Screening rank: feasible candidates by score, infeasible ones at
    /// the sentinel −1 (matching [`Objective::scored`] semantics).
    fn screen_score(&self, m: &Metrics) -> f64 {
        if self.objective.feasible(m) {
            self.objective.score(m)
        } else {
            -1.0
        }
    }

    /// The batch-scoped screen-then-re-price pipeline shared by the serial
    /// and parallel entry points.
    fn rescore(&self, archs: &[Architecture], workers: usize) -> Vec<Metrics> {
        if archs.is_empty() {
            return Vec::new();
        }
        let mut metrics = self.cheap.evaluate_batch_workers(archs, workers);
        self.cheap_evals.fetch_add(archs.len() as u64, Ordering::Relaxed);
        let keep = self.keep_of(archs.len());
        if keep == 0 {
            return metrics;
        }
        let mut order: Vec<usize> = (0..archs.len()).collect();
        order.sort_by(|&i, &j| {
            self.screen_score(&metrics[j])
                .total_cmp(&self.screen_score(&metrics[i]))
                .then(i.cmp(&j))
        });
        let mut chosen: Vec<usize> = order[..keep].to_vec();
        // Re-price in batch order so the expensive tier sees a stable
        // sub-batch regardless of score ties.
        chosen.sort_unstable();
        let chosen_archs: Vec<Architecture> = chosen.iter().map(|&i| archs[i].clone()).collect();
        let refined = self.expensive.evaluate_batch_workers(&chosen_archs, workers);
        self.expensive_evals.fetch_add(chosen.len() as u64, Ordering::Relaxed);
        let mut escalated = vec![false; archs.len()];
        for (&i, m) in chosen.iter().zip(refined) {
            metrics[i] = m;
            escalated[i] = true;
        }
        // Escalate-until-fixpoint: re-pricing lowers scores, so the batch
        // argmax may now be a cheap-priced candidate holding an optimistic
        // estimate. Keep re-pricing the current argmax until the batch's
        // best score belongs to an expensive-priced candidate.
        loop {
            let top = (0..archs.len())
                .max_by(|&i, &j| {
                    self.screen_score(&metrics[i])
                        .total_cmp(&self.screen_score(&metrics[j]))
                        .then(j.cmp(&i))
                })
                .expect("non-empty batch");
            if escalated[top] {
                break;
            }
            metrics[top] = self.expensive.evaluate(&archs[top]);
            escalated[top] = true;
            self.expensive_evals.fetch_add(1, Ordering::Relaxed);
        }
        metrics
    }
}

impl Evaluator for CascadeBackend<'_> {
    fn evaluate(&self, arch: &Architecture) -> Metrics {
        self.expensive_evals.fetch_add(1, Ordering::Relaxed);
        self.expensive.evaluate(arch)
    }

    fn evaluate_batch(&self, archs: &[Architecture]) -> Vec<Metrics> {
        self.rescore(archs, 1)
    }

    fn evaluate_batch_workers(&self, archs: &[Architecture], workers: usize) -> Vec<Metrics> {
        self.rescore(archs, workers)
    }
}

impl EvalBackend for CascadeBackend<'_> {
    /// A cascade can hand back metrics from either tier; it reports the
    /// fidelity of its *top* tier, which is what the zoo's winners carry.
    fn fidelity(&self) -> Fidelity {
        self.expensive.fidelity()
    }

    fn cost_hint(&self) -> f64 {
        self.cheap.cost_hint() + self.keep_frac * self.expensive.cost_hint()
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{Op, SampleFn};
    use gcode_nn::agg::AggMode;
    use gcode_nn::pool::PoolMode;

    fn pc() -> WorkloadProfile {
        WorkloadProfile::modelnet40()
    }

    fn arch(dim: usize) -> Architecture {
        Architecture::new(vec![
            Op::Sample(SampleFn::Knn { k: 20 }),
            Op::Aggregate(AggMode::Max),
            Op::Combine { dim },
            Op::GlobalPool(PoolMode::Max),
        ])
    }

    fn analytic() -> AnalyticBackend<fn(&Architecture) -> f64> {
        AnalyticBackend {
            profile: pc(),
            sys: SystemConfig::tx2_to_i7(40.0),
            accuracy_fn: |a: &Architecture| 0.85 + 0.001 * a.len() as f64,
        }
    }

    /// An "expensive" backend distinguishable from the analytic one. The
    /// inflation is tiny so re-pricing never re-ranks the batch — which
    /// keeps the top-k escalation tests focused on the cut itself (the
    /// [`Inflating`] backend below exercises the re-ranking fixpoint).
    struct Marked {
        inner: AnalyticBackend<fn(&Architecture) -> f64>,
        calls: AtomicU64,
    }

    impl Marked {
        fn new() -> Self {
            Self { inner: analytic(), calls: AtomicU64::new(0) }
        }
    }

    impl Evaluator for Marked {
        fn evaluate(&self, arch: &Architecture) -> Metrics {
            self.calls.fetch_add(1, Ordering::Relaxed);
            let m = self.inner.evaluate(arch);
            Metrics { latency_s: m.latency_s * (1.0 + 1e-9), ..m }
        }
    }

    impl EvalBackend for Marked {
        fn fidelity(&self) -> Fidelity {
            Fidelity::Simulated
        }

        fn cost_hint(&self) -> f64 {
            25.0
        }

        fn name(&self) -> &str {
            "marked"
        }
    }

    fn batch(n: usize) -> Vec<Architecture> {
        (0..n).map(|i| arch(8 * (i + 1))).collect()
    }

    #[test]
    fn analytic_backend_reports_identity() {
        let a = analytic();
        assert_eq!(a.fidelity(), Fidelity::Analytic);
        assert_eq!(a.name(), "analytic");
        assert_eq!(a.cost_hint(), 1.0);
        assert!(Fidelity::Analytic < Fidelity::Simulated);
        assert!(Fidelity::Simulated < Fidelity::Measured);
    }

    #[test]
    fn shard_batch_is_bit_identical_to_serial_for_any_worker_count() {
        let a = analytic();
        let archs = batch(13);
        let serial = a.evaluate_batch(&archs);
        for workers in [2usize, 3, 4, 8, 16, 64] {
            let parallel = shard_batch(&a, &archs, workers);
            assert_eq!(parallel.len(), serial.len());
            for (p, s) in parallel.iter().zip(&serial) {
                assert_eq!(p.latency_s.to_bits(), s.latency_s.to_bits(), "workers {workers}");
                assert_eq!(p.energy_j.to_bits(), s.energy_j.to_bits());
                assert_eq!(p.accuracy.to_bits(), s.accuracy.to_bits());
            }
        }
    }

    #[test]
    fn shard_batch_handles_degenerate_sizes() {
        let a = analytic();
        assert!(shard_batch(&a, &[], 8).is_empty());
        let one = batch(1);
        assert_eq!(shard_batch(&a, &one, 8).len(), 1);
        // workers = 0 is treated as serial.
        assert_eq!(shard_batch(&a, &one, 0).len(), 1);
    }

    #[test]
    fn cascade_reprices_only_the_top_fraction() {
        let cheap = analytic();
        let expensive = Marked::new();
        let objective = Objective::new(0.1, 10.0, 100.0);
        let cascade = CascadeBackend::new(&cheap, &expensive, objective).with_keep_frac(0.25);
        let archs = batch(16);
        let metrics = cascade.evaluate_batch(&archs);
        assert_eq!(metrics.len(), 16);
        let stats = cascade.stats();
        assert_eq!(stats.cheap_evals, 16);
        assert_eq!(stats.expensive_evals, 4, "ceil(0.25 * 16)");
        assert_eq!(expensive.calls.load(Ordering::Relaxed), 4);
        assert!((stats.escalation_rate() - 0.25).abs() < 1e-12);
        // Exactly the re-priced candidates carry the expensive (inflated)
        // latency.
        let cheap_metrics = cheap.evaluate_batch(&archs);
        let inflated =
            metrics.iter().zip(&cheap_metrics).filter(|(m, c)| m.latency_s > c.latency_s).count();
        assert_eq!(inflated, 4);
    }

    #[test]
    fn cascade_is_worker_invariant() {
        let cheap = analytic();
        let expensive = Marked::new();
        let objective = Objective::new(0.1, 10.0, 100.0);
        let cascade = CascadeBackend::new(&cheap, &expensive, objective).with_keep_frac(0.3);
        let archs = batch(11);
        let serial = cascade.evaluate_batch_workers(&archs, 1);
        for workers in [2usize, 4, 8] {
            let parallel = cascade.evaluate_batch_workers(&archs, workers);
            for (p, s) in parallel.iter().zip(&serial) {
                assert_eq!(p.latency_s.to_bits(), s.latency_s.to_bits(), "workers {workers}");
            }
        }
    }

    /// Expensive backend whose latency is so much higher than the cheap
    /// estimate that every top-k escalation dethrones itself.
    struct Inflating {
        inner: AnalyticBackend<fn(&Architecture) -> f64>,
    }

    impl Evaluator for Inflating {
        fn evaluate(&self, arch: &Architecture) -> Metrics {
            let m = self.inner.evaluate(arch);
            Metrics { latency_s: m.latency_s * 50.0, ..m }
        }
    }

    impl EvalBackend for Inflating {
        fn fidelity(&self) -> Fidelity {
            Fidelity::Simulated
        }

        fn cost_hint(&self) -> f64 {
            50.0
        }

        fn name(&self) -> &str {
            "inflating"
        }
    }

    #[test]
    fn batch_argmax_is_always_expensive_priced() {
        // The cheap tier is optimistic, so after the top-k pass the batch
        // argmax may hold an unverified estimate; the fixpoint loop must
        // keep escalating until the winner is honestly priced — even when
        // the expensive tier dethrones every candidate it re-prices.
        let cheap = analytic();
        let expensive = Inflating { inner: analytic() };
        let objective = Objective::new(0.1, 10.0, 100.0);
        let cascade = CascadeBackend::new(&cheap, &expensive, objective).with_keep_frac(0.25);
        let archs = batch(16);
        let metrics = cascade.evaluate_batch(&archs);
        // The argmax by screening score carries the 50x-inflated
        // (expensive-tier) latency, not a cheap estimate.
        let top = (0..archs.len())
            .max_by(|&i, &j| {
                let s = |m: &Metrics| {
                    if objective.feasible(m) {
                        objective.score(m)
                    } else {
                        -1.0
                    }
                };
                s(&metrics[i]).total_cmp(&s(&metrics[j])).then(j.cmp(&i))
            })
            .expect("non-empty");
        let honest = expensive.evaluate(&archs[top]);
        assert_eq!(metrics[top].latency_s.to_bits(), honest.latency_s.to_bits());
        // Escalation went beyond the initial top-k but stayed counted.
        let stats = cascade.stats();
        assert!(stats.expensive_evals > 4, "fixpoint must escalate past the top-k cut");
        assert!(stats.expensive_evals <= 16);
    }

    #[test]
    fn cascade_single_lookups_are_full_fidelity() {
        let cheap = analytic();
        let expensive = Marked::new();
        let cascade = CascadeBackend::new(&cheap, &expensive, Objective::default());
        let m = cascade.evaluate(&arch(16));
        assert_eq!(m.latency_s.to_bits(), expensive.evaluate(&arch(16)).latency_s.to_bits());
        assert_eq!(cascade.stats().expensive_evals, 1);
        assert_eq!(cascade.stats().cheap_evals, 0);
    }

    #[test]
    fn cascade_keep_bounds() {
        let cheap = analytic();
        let expensive = Marked::new();
        let objective = Objective::default();
        let c = CascadeBackend::new(&cheap, &expensive, objective);
        assert_eq!(c.keep_of(16), 4);
        assert_eq!(c.keep_of(1), 1, "min_keep floors the escalation");
        let none =
            CascadeBackend::new(&cheap, &expensive, objective).with_keep_frac(0.0).with_min_keep(0);
        assert_eq!(none.keep_of(16), 0, "keep_frac 0 + min_keep 0 = pure cheap");
        let all = CascadeBackend::new(&cheap, &expensive, objective).with_keep_frac(1.0);
        assert_eq!(all.keep_of(7), 7);
    }

    #[test]
    fn cascade_reports_top_tier_identity() {
        let cheap = analytic();
        let expensive = Marked::new();
        let c = CascadeBackend::new(&cheap, &expensive, Objective::default());
        assert_eq!(c.fidelity(), Fidelity::Simulated);
        assert_eq!(c.name(), "cascade(analytic->marked)");
        assert!(c.cost_hint() < expensive.cost_hint());
        assert!(c.cost_hint() > cheap.cost_hint());
    }

    #[test]
    fn cascade_empty_batch_is_empty() {
        let cheap = analytic();
        let expensive = Marked::new();
        let c = CascadeBackend::new(&cheap, &expensive, Objective::default());
        assert!(c.evaluate_batch(&[]).is_empty());
        assert_eq!(c.stats(), CascadeStats::default());
    }
}
