//! The evaluation-backend layer: fidelity-tagged measurement oracles and
//! the deterministic parallel batch driver.
//!
//! The paper prices thousands of candidates with a cheap LUT estimate and
//! closes the estimate-vs-measured gap with higher-fidelity measurement
//! (Sec. 3.5). This module makes that an explicit architecture instead of
//! scattered call sites: every oracle implements [`EvalBackend`] — an
//! [`Evaluator`] that also declares *what it is* ([`Fidelity`]) and *what
//! it costs* ([`EvalBackend::cost_hint`]) — so strategy code never names a
//! concrete estimator, and new oracles (the live TCP engine, say) register
//! without touching any search code.
//!
//! The workspace's backends, cheapest first:
//!
//! * [`AnalyticBackend`] (here) — LUT-style cost estimation plus the
//!   analytic energy model; the cheap screen.
//! * `gcode_sim::SimBackend` — the discrete-event co-inference simulator;
//!   the expensive "measured" oracle that sees runtime overheads.
//! * [`CascadeBackend`] (here) — multi-fidelity search over an ordered
//!   *fidelity ladder*: screens every batch with the cheapest tier and
//!   escalates only the top fraction rung by rung, with the batch winner
//!   always priced by the top tier. `gcode_engine::EngineBackend` — the
//!   live TCP engine, tagged [`Fidelity::Measured`] — slots in as the top
//!   rung of an `analytic → sim → engine` ladder to close the loop against
//!   the deployed runtime.
//!
//! [`shard_batch`] is the parallel driver behind
//! [`Evaluator::evaluate_batch_workers`]: contiguous shards across scoped
//! worker threads, merged in input order, so serial and parallel runs are
//! bit-identical.

use crate::arch::{Architecture, WorkloadProfile};
use crate::cost::trace;
use crate::estimate::{breakdown_from_trace, energy_from_parts};
use crate::eval::{Evaluator, Metrics, Objective};
use gcode_hardware::SystemConfig;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// How trustworthy (and how expensive) a backend's numbers are, ordered
/// from cheapest estimate to ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Fidelity {
    /// Closed-form LUT accumulation — no runtime overheads.
    Analytic,
    /// A trained predictor interpolating measured data.
    Predicted,
    /// Discrete-event simulation with runtime overheads charged.
    Simulated,
    /// Live measurement on real hardware (the TCP engine).
    Measured,
}

/// An [`Evaluator`] that declares its fidelity tier and relative cost, the
/// unit every oracle plugs into. `Sync` is inherited from [`Evaluator`],
/// so any backend can be sharded by the parallel driver or stacked under a
/// [`CascadeBackend`].
pub trait EvalBackend: Evaluator {
    /// The fidelity tier of the metrics this backend produces.
    fn fidelity(&self) -> Fidelity;

    /// Rough per-candidate cost relative to the analytic estimator (1.0).
    /// Cascades use this to report how much work screening saved.
    fn cost_hint(&self) -> f64;

    /// Short human-readable name for reports and CLI output.
    fn name(&self) -> &str;
}

/// Shards `archs` into `workers` contiguous chunks, evaluates each chunk
/// on its own scoped thread via [`Evaluator::evaluate_batch`], and merges
/// the results in input order.
///
/// Determinism: shard boundaries depend only on `archs.len()` and
/// `workers`, the merge consumes join handles in spawn order, and each
/// candidate's metrics are computed by the same pointwise code that a
/// serial run would execute — so the output is bit-identical to
/// `evaluator.evaluate_batch(archs)` for any pointwise backend, regardless
/// of thread scheduling.
pub fn shard_batch<E: Evaluator + ?Sized>(
    evaluator: &E,
    archs: &[Architecture],
    workers: usize,
) -> Vec<Metrics> {
    let workers = workers.max(1).min(archs.len());
    if workers <= 1 {
        return evaluator.evaluate_batch(archs);
    }
    let shard_len = archs.len().div_ceil(workers);
    crossbeam::thread::scope(|s| {
        let handles: Vec<_> = archs
            .chunks(shard_len)
            .map(|shard| s.spawn(move |_| evaluator.evaluate_batch(shard)))
            .collect();
        let mut merged = Vec::with_capacity(archs.len());
        for handle in handles {
            merged.extend(handle.join().expect("evaluation worker panicked"));
        }
        merged
    })
    .expect("worker scope")
}

/// [`EvalBackend`] backed by the analytic cost/energy estimators plus a
/// user-supplied accuracy function (surrogate model or supernet query) —
/// the paper's LUT-style estimate and the cheap tier of every cascade.
/// Latency and energy come from a single shape trace per candidate.
pub struct AnalyticBackend<F: Fn(&Architecture) -> f64 + Sync> {
    /// Workload being optimized for.
    pub profile: WorkloadProfile,
    /// Target system.
    pub sys: SystemConfig,
    /// Accuracy callback.
    pub accuracy_fn: F,
}

impl<F: Fn(&Architecture) -> f64 + Sync> Evaluator for AnalyticBackend<F> {
    fn evaluate(&self, arch: &Architecture) -> Metrics {
        let traced = trace(arch, &self.profile);
        let b = breakdown_from_trace(&traced, arch, &self.sys);
        Metrics {
            accuracy: (self.accuracy_fn)(arch),
            latency_s: b.total_s(),
            energy_j: energy_from_parts(&traced, &b, arch, &self.sys),
        }
    }
}

impl<F: Fn(&Architecture) -> f64 + Sync> EvalBackend for AnalyticBackend<F> {
    fn fidelity(&self) -> Fidelity {
        Fidelity::Analytic
    }

    fn cost_hint(&self) -> f64 {
        1.0
    }

    fn name(&self) -> &str {
        "analytic"
    }
}

/// How many evaluations the bottom and top tiers of a [`CascadeBackend`]
/// have performed — the two ends of the ladder, which is all a two-tier
/// cascade has. For the per-tier breakdown of a taller ladder see
/// [`CascadeBackend::tier_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CascadeStats {
    /// Candidates priced by the cheapest (screening) tier.
    pub cheap_evals: u64,
    /// Candidates re-priced by the most expensive (top) tier.
    pub expensive_evals: u64,
}

impl CascadeStats {
    /// Fraction of screened candidates that were re-priced expensively
    /// (0 when nothing was screened).
    pub fn escalation_rate(&self) -> f64 {
        if self.cheap_evals == 0 {
            0.0
        } else {
            self.expensive_evals as f64 / self.cheap_evals as f64
        }
    }
}

/// One rung of a ladder's per-tier breakdown: identity, configured
/// escalation fraction (the *current* value when adaptive escalation is
/// on) and how many candidates the tier has priced so far.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TierStats {
    /// The tier backend's [`EvalBackend::name`].
    pub name: String,
    /// The tier's fidelity tag.
    pub fidelity: Fidelity,
    /// The tier's relative cost hint.
    pub cost_hint: f64,
    /// Fraction of the previous tier's survivors escalated into this tier
    /// (1.0 for the bottom tier, which sees every candidate).
    pub keep_frac: f64,
    /// Candidates this tier has evaluated so far.
    pub evals: u64,
}

/// Multi-fidelity backend: an ordered *ladder* of [`EvalBackend`] tiers,
/// cheapest first. Every batch is priced by the bottom tier; each higher
/// tier then re-prices only the top `keep_frac` fraction (by the screening
/// [`Objective`] score) of the candidates that reached the tier below it.
/// Whatever a candidate's last-visited tier produced is what it keeps —
/// exactly the paper's "estimate thousands, measure the promising few"
/// economy, packaged as just another backend so strategies stay oblivious.
/// The classic two-tier cascade is [`CascadeBackend::new`]; taller ladders
/// (`analytic → predictor → sim → engine`) come from
/// [`CascadeBackend::ladder`].
///
/// Because cheap tiers are optimistic (they miss the runtime overheads the
/// expensive tiers charge), a fixed top-k cut would systematically leave a
/// just-below-cutoff candidate holding an inflated cheap score above every
/// honestly re-priced one. After the tier sweep the ladder therefore keeps
/// escalating the batch's current argmax *straight to the top tier* until
/// the best-scoring candidate of the batch is top-tier priced — so a
/// batch's winner (and hence the search winner, which is some batch's
/// argmax) always carries top-tier metrics. Candidates that never led
/// their batch may retain lower-tier metrics; only escalation order, not
/// results, depends on the tiers' relative bias. Setting `keep_frac` to 0
/// with [`CascadeBackend::with_min_keep`] 0 disables escalation entirely
/// (pure-cheap screening mode).
///
/// Determinism: ranking sorts by screening score with the batch index as
/// tie-break, and every tier runs through
/// [`Evaluator::evaluate_batch_workers`] — so results never depend on
/// worker count. They do depend on batch composition (screening is
/// batch-scoped by design), so runs are reproducible for a fixed
/// `SearchConfig::batch_size`. With
/// [`CascadeBackend::with_adaptive_keep`] the per-step fractions also
/// evolve deterministically from the observed batches.
///
/// Single-candidate lookups ([`Evaluator::evaluate`], e.g. Alg. 1's
/// stage-2 tuning probes) always go straight to the top tier: screening a
/// batch of one is pure overhead.
pub struct CascadeBackend<'a> {
    tiers: Vec<&'a dyn EvalBackend>,
    objective: Objective,
    /// One escalation fraction per step `tiers[t-1] → tiers[t]`
    /// (`tiers.len() - 1` entries). Behind a mutex so adaptive escalation
    /// can retune it from `&self` (the `Evaluator` methods all take
    /// `&self`); contention is nil — one lock per batch.
    keep_fracs: Mutex<Vec<f64>>,
    min_keep: usize,
    adaptive: bool,
    nominal_batch: usize,
    name: String,
    evals: Vec<AtomicU64>,
}

/// Escalation fractions stay in this band under adaptive tuning.
const ADAPTIVE_FRAC_MIN: f64 = 0.05;
/// Rank correlation at which the screen is considered trustworthy; above
/// it the escalated fraction shrinks, below it the fraction grows.
const ADAPTIVE_RHO_TARGET: f64 = 0.9;

impl<'a> CascadeBackend<'a> {
    /// Builds a fidelity ladder from `tiers`, cheapest first. Every
    /// escalation step starts at the default `keep_frac` 0.25 and
    /// `min_keep` 1.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two tiers are given or if the tiers are not
    /// sorted by ascending [`EvalBackend::cost_hint`] — a ladder that gets
    /// *more* expensive to screen than to measure is a configuration bug,
    /// not a tuning choice.
    pub fn ladder(tiers: Vec<&'a dyn EvalBackend>, objective: Objective) -> Self {
        assert!(tiers.len() >= 2, "a fidelity ladder needs at least two tiers");
        for pair in tiers.windows(2) {
            assert!(
                pair[0].cost_hint() <= pair[1].cost_hint(),
                "ladder tiers out of order: {} (cost {}) precedes {} (cost {})",
                pair[0].name(),
                pair[0].cost_hint(),
                pair[1].name(),
                pair[1].cost_hint()
            );
        }
        let name =
            format!("cascade({})", tiers.iter().map(|t| t.name()).collect::<Vec<_>>().join("->"));
        let steps = tiers.len() - 1;
        Self {
            name,
            evals: (0..tiers.len()).map(|_| AtomicU64::new(0)).collect(),
            keep_fracs: Mutex::new(vec![0.25; steps]),
            min_keep: 1,
            adaptive: false,
            nominal_batch: 16,
            tiers,
            objective,
        }
    }

    /// Builds the classic two-tier cascade: screen with `cheap`, re-price
    /// the top quarter of each batch (by `objective` score) with
    /// `expensive`. Equivalent to a two-rung [`CascadeBackend::ladder`].
    pub fn new(
        cheap: &'a dyn EvalBackend,
        expensive: &'a dyn EvalBackend,
        objective: Objective,
    ) -> Self {
        Self::ladder(vec![cheap, expensive], objective)
    }

    /// Sets every escalation step's fraction (clamped to `[0, 1]`; at
    /// least `min_keep` candidates are always re-priced per step).
    #[must_use]
    pub fn with_keep_frac(self, keep_frac: f64) -> Self {
        let steps = self.tiers.len() - 1;
        self.with_keep_fracs(&vec![keep_frac; steps])
    }

    /// Sets each escalation step's fraction individually, bottom step
    /// first (clamped to `[0, 1]`).
    ///
    /// # Panics
    ///
    /// Panics unless exactly `tiers.len() - 1` fractions are given.
    #[must_use]
    pub fn with_keep_fracs(self, keep_fracs: &[f64]) -> Self {
        assert_eq!(
            keep_fracs.len(),
            self.tiers.len() - 1,
            "need one keep_frac per escalation step"
        );
        *self.keep_fracs.lock().expect("keep_fracs lock") =
            keep_fracs.iter().map(|f| f.clamp(0.0, 1.0)).collect();
        self
    }

    /// Sets the minimum number of candidates re-priced per step
    /// (default 1; 0 allows pure-cheap batches at `keep_frac` 0).
    #[must_use]
    pub fn with_min_keep(mut self, min_keep: usize) -> Self {
        self.min_keep = min_keep;
        self
    }

    /// Sets the batch size [`EvalBackend::cost_hint`] assumes when folding
    /// `min_keep` into the per-candidate cost estimate (default 16, the
    /// default `SearchConfig::batch_size`).
    #[must_use]
    pub fn with_nominal_batch(mut self, nominal_batch: usize) -> Self {
        self.nominal_batch = nominal_batch.max(1);
        self
    }

    /// Enables cross-batch adaptive escalation: after each batch, every
    /// step's `keep_frac` is retuned from the observed rank correlation
    /// between the screening scores and the re-priced scores of the
    /// candidates it escalated. A screen whose ranking the tier above
    /// keeps confirming (Spearman ρ above the internal target, 0.9) earns a
    /// smaller escalated fraction; a screen that keeps being re-ranked
    /// pays with a larger one. The update is a pure function of the batch
    /// stream, so searches stay deterministic and worker-invariant.
    #[must_use]
    pub fn with_adaptive_keep(mut self) -> Self {
        self.adaptive = true;
        self
    }

    /// Bottom- and top-tier evaluation counters so far (the full ladder
    /// breakdown is [`CascadeBackend::tier_stats`]).
    pub fn stats(&self) -> CascadeStats {
        CascadeStats {
            cheap_evals: self.evals[0].load(Ordering::Relaxed),
            expensive_evals: self.evals[self.tiers.len() - 1].load(Ordering::Relaxed),
        }
    }

    /// Per-tier identity, current escalation fraction and evaluation
    /// count, bottom tier first.
    pub fn tier_stats(&self) -> Vec<TierStats> {
        let fracs = self.keep_fracs.lock().expect("keep_fracs lock");
        self.tiers
            .iter()
            .enumerate()
            .map(|(t, tier)| TierStats {
                name: tier.name().to_string(),
                fidelity: tier.fidelity(),
                cost_hint: tier.cost_hint(),
                keep_frac: if t == 0 { 1.0 } else { fracs[t - 1] },
                evals: self.evals[t].load(Ordering::Relaxed),
            })
            .collect()
    }

    /// The escalation fractions currently in force, bottom step first —
    /// the configured values, or the adapted ones once
    /// [`CascadeBackend::with_adaptive_keep`] has seen batches.
    pub fn keep_fracs(&self) -> Vec<f64> {
        self.keep_fracs.lock().expect("keep_fracs lock").clone()
    }

    /// How many of `n` candidates survive a step screening at `keep_frac`.
    fn keep_of(&self, keep_frac: f64, n: usize) -> usize {
        ((keep_frac * n as f64).ceil() as usize).max(self.min_keep).min(n)
    }

    /// Screening rank: feasible candidates by score, infeasible ones at
    /// the sentinel −1 (matching [`Objective::scored`] semantics).
    fn screen_score(&self, m: &Metrics) -> f64 {
        if self.objective.feasible(m) {
            self.objective.score(m)
        } else {
            -1.0
        }
    }

    /// The batch-scoped screen-then-re-price pipeline shared by the serial
    /// and parallel entry points.
    fn rescore(&self, archs: &[Architecture], workers: usize) -> Vec<Metrics> {
        if archs.is_empty() {
            return Vec::new();
        }
        let top_tier = self.tiers.len() - 1;
        let mut metrics = self.tiers[0].evaluate_batch_workers(archs, workers);
        self.evals[0].fetch_add(archs.len() as u64, Ordering::Relaxed);
        let fracs = self.keep_fracs.lock().expect("keep_fracs lock").clone();

        // Tier sweep: each step re-prices the top fraction of the
        // candidates that reached the tier below it.
        let mut pool: Vec<usize> = (0..archs.len()).collect();
        let mut reached = vec![0usize; archs.len()];
        let mut rho_observed: Vec<Option<f64>> = vec![None; fracs.len()];
        for (step, &frac) in fracs.iter().enumerate() {
            let tier = step + 1;
            let keep = self.keep_of(frac, pool.len());
            if keep == 0 {
                // Escalation disabled from this step on. If nothing ever
                // left the bottom tier this is pure-cheap screening mode —
                // no honest-winner pass either.
                if tier == 1 {
                    return metrics;
                }
                break;
            }
            pool.sort_by(|&i, &j| {
                self.screen_score(&metrics[j])
                    .total_cmp(&self.screen_score(&metrics[i]))
                    .then(i.cmp(&j))
            });
            let mut chosen: Vec<usize> = pool[..keep].to_vec();
            // Re-price in batch order so the tier sees a stable sub-batch
            // regardless of score ties.
            chosen.sort_unstable();
            let chosen_archs: Vec<Architecture> =
                chosen.iter().map(|&i| archs[i].clone()).collect();
            let refined = self.tiers[tier].evaluate_batch_workers(&chosen_archs, workers);
            self.evals[tier].fetch_add(chosen.len() as u64, Ordering::Relaxed);
            // Snapshot the screening scores before they are overwritten —
            // only when adaptive escalation will actually consume them.
            let before: Option<Vec<f64>> = (self.adaptive && chosen.len() >= 3)
                .then(|| chosen.iter().map(|&i| self.screen_score(&metrics[i])).collect());
            for (&i, m) in chosen.iter().zip(refined) {
                metrics[i] = m;
                reached[i] = tier;
            }
            if let Some(before) = before {
                let after: Vec<f64> =
                    chosen.iter().map(|&i| self.screen_score(&metrics[i])).collect();
                rho_observed[step] = Some(spearman_rho(&before, &after));
            }
            pool = chosen;
        }
        // Escalate-until-fixpoint: re-pricing lowers scores, so the batch
        // argmax may hold an optimistic lower-tier estimate. Keep pricing
        // the current argmax with the top tier until the batch's best
        // score belongs to a top-tier-priced candidate.
        loop {
            let top = (0..archs.len())
                .max_by(|&i, &j| {
                    self.screen_score(&metrics[i])
                        .total_cmp(&self.screen_score(&metrics[j]))
                        .then(j.cmp(&i))
                })
                .expect("non-empty batch");
            if reached[top] == top_tier {
                break;
            }
            metrics[top] = self.tiers[top_tier].evaluate(&archs[top]);
            reached[top] = top_tier;
            self.evals[top_tier].fetch_add(1, Ordering::Relaxed);
        }
        if self.adaptive {
            self.adapt_keep_fracs(&rho_observed);
        }
        metrics
    }

    /// Applies the cross-batch adaptive update: per step, nudge the
    /// fraction down when the observed rank correlation beat the target
    /// and up when it fell short, clamped to `[ADAPTIVE_FRAC_MIN, 1]`.
    fn adapt_keep_fracs(&self, rho_observed: &[Option<f64>]) {
        let mut fracs = self.keep_fracs.lock().expect("keep_fracs lock");
        for (step, rho) in rho_observed.iter().enumerate() {
            if let Some(rho) = rho {
                let factor = (1.0 + 0.5 * (ADAPTIVE_RHO_TARGET - rho)).clamp(0.75, 1.5);
                fracs[step] = (fracs[step] * factor).clamp(ADAPTIVE_FRAC_MIN, 1.0);
            }
        }
    }
}

/// Spearman rank correlation of two equally long samples; index order
/// breaks ties so the result is deterministic.
fn spearman_rho(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len();
    if n < 2 {
        return 1.0;
    }
    let rank = |xs: &[f64]| -> Vec<usize> {
        let mut order: Vec<usize> = (0..xs.len()).collect();
        order.sort_by(|&i, &j| xs[i].total_cmp(&xs[j]).then(i.cmp(&j)));
        let mut ranks = vec![0usize; xs.len()];
        for (r, &i) in order.iter().enumerate() {
            ranks[i] = r;
        }
        ranks
    };
    let (ra, rb) = (rank(a), rank(b));
    let d2: f64 = ra
        .iter()
        .zip(&rb)
        .map(|(&x, &y)| {
            let d = x as f64 - y as f64;
            d * d
        })
        .sum();
    1.0 - 6.0 * d2 / (n as f64 * (n as f64 * n as f64 - 1.0))
}

impl Evaluator for CascadeBackend<'_> {
    fn evaluate(&self, arch: &Architecture) -> Metrics {
        let top = self.tiers.len() - 1;
        self.evals[top].fetch_add(1, Ordering::Relaxed);
        self.tiers[top].evaluate(arch)
    }

    fn evaluate_batch(&self, archs: &[Architecture]) -> Vec<Metrics> {
        self.rescore(archs, 1)
    }

    fn evaluate_batch_workers(&self, archs: &[Architecture], workers: usize) -> Vec<Metrics> {
        self.rescore(archs, workers)
    }
}

impl EvalBackend for CascadeBackend<'_> {
    /// A ladder can hand back metrics from any tier; it reports the
    /// fidelity of its *top* tier, which is what the zoo's winners carry.
    fn fidelity(&self) -> Fidelity {
        self.tiers[self.tiers.len() - 1].fidelity()
    }

    /// Expected per-candidate cost at the nominal batch size, with
    /// `min_keep` folded in: each step's effective escalated fraction is
    /// `keep_of(survivors)/nominal`, which exceeds the raw `keep_frac`
    /// whenever the floor binds (small batches, tiny fractions).
    fn cost_hint(&self) -> f64 {
        let fracs = self.keep_fracs.lock().expect("keep_fracs lock");
        let nominal = self.nominal_batch;
        let mut total = self.tiers[0].cost_hint();
        let mut survivors = nominal;
        for (step, &frac) in fracs.iter().enumerate() {
            let keep = self.keep_of(frac, survivors);
            if keep == 0 {
                break;
            }
            total += keep as f64 / nominal as f64 * self.tiers[step + 1].cost_hint();
            survivors = keep;
        }
        total
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{Op, SampleFn};
    use gcode_nn::agg::AggMode;
    use gcode_nn::pool::PoolMode;

    fn pc() -> WorkloadProfile {
        WorkloadProfile::modelnet40()
    }

    fn arch(dim: usize) -> Architecture {
        Architecture::new(vec![
            Op::Sample(SampleFn::Knn { k: 20 }),
            Op::Aggregate(AggMode::Max),
            Op::Combine { dim },
            Op::GlobalPool(PoolMode::Max),
        ])
    }

    fn analytic() -> AnalyticBackend<fn(&Architecture) -> f64> {
        AnalyticBackend {
            profile: pc(),
            sys: SystemConfig::tx2_to_i7(40.0),
            accuracy_fn: |a: &Architecture| 0.85 + 0.001 * a.len() as f64,
        }
    }

    /// An "expensive" backend distinguishable from the analytic one. The
    /// inflation is tiny so re-pricing never re-ranks the batch — which
    /// keeps the top-k escalation tests focused on the cut itself (the
    /// [`Inflating`] backend below exercises the re-ranking fixpoint).
    struct Marked {
        inner: AnalyticBackend<fn(&Architecture) -> f64>,
        calls: AtomicU64,
    }

    impl Marked {
        fn new() -> Self {
            Self { inner: analytic(), calls: AtomicU64::new(0) }
        }
    }

    impl Evaluator for Marked {
        fn evaluate(&self, arch: &Architecture) -> Metrics {
            self.calls.fetch_add(1, Ordering::Relaxed);
            let m = self.inner.evaluate(arch);
            Metrics { latency_s: m.latency_s * (1.0 + 1e-9), ..m }
        }
    }

    impl EvalBackend for Marked {
        fn fidelity(&self) -> Fidelity {
            Fidelity::Simulated
        }

        fn cost_hint(&self) -> f64 {
            25.0
        }

        fn name(&self) -> &str {
            "marked"
        }
    }

    fn batch(n: usize) -> Vec<Architecture> {
        (0..n).map(|i| arch(8 * (i + 1))).collect()
    }

    #[test]
    fn analytic_backend_reports_identity() {
        let a = analytic();
        assert_eq!(a.fidelity(), Fidelity::Analytic);
        assert_eq!(a.name(), "analytic");
        assert_eq!(a.cost_hint(), 1.0);
        assert!(Fidelity::Analytic < Fidelity::Simulated);
        assert!(Fidelity::Simulated < Fidelity::Measured);
    }

    #[test]
    fn shard_batch_is_bit_identical_to_serial_for_any_worker_count() {
        let a = analytic();
        let archs = batch(13);
        let serial = a.evaluate_batch(&archs);
        for workers in [2usize, 3, 4, 8, 16, 64] {
            let parallel = shard_batch(&a, &archs, workers);
            assert_eq!(parallel.len(), serial.len());
            for (p, s) in parallel.iter().zip(&serial) {
                assert_eq!(p.latency_s.to_bits(), s.latency_s.to_bits(), "workers {workers}");
                assert_eq!(p.energy_j.to_bits(), s.energy_j.to_bits());
                assert_eq!(p.accuracy.to_bits(), s.accuracy.to_bits());
            }
        }
    }

    #[test]
    fn shard_batch_handles_degenerate_sizes() {
        let a = analytic();
        assert!(shard_batch(&a, &[], 8).is_empty());
        let one = batch(1);
        assert_eq!(shard_batch(&a, &one, 8).len(), 1);
        // workers = 0 is treated as serial.
        assert_eq!(shard_batch(&a, &one, 0).len(), 1);
    }

    #[test]
    fn cascade_reprices_only_the_top_fraction() {
        let cheap = analytic();
        let expensive = Marked::new();
        let objective = Objective::new(0.1, 10.0, 100.0);
        let cascade = CascadeBackend::new(&cheap, &expensive, objective).with_keep_frac(0.25);
        let archs = batch(16);
        let metrics = cascade.evaluate_batch(&archs);
        assert_eq!(metrics.len(), 16);
        let stats = cascade.stats();
        assert_eq!(stats.cheap_evals, 16);
        assert_eq!(stats.expensive_evals, 4, "ceil(0.25 * 16)");
        assert_eq!(expensive.calls.load(Ordering::Relaxed), 4);
        assert!((stats.escalation_rate() - 0.25).abs() < 1e-12);
        // Exactly the re-priced candidates carry the expensive (inflated)
        // latency.
        let cheap_metrics = cheap.evaluate_batch(&archs);
        let inflated =
            metrics.iter().zip(&cheap_metrics).filter(|(m, c)| m.latency_s > c.latency_s).count();
        assert_eq!(inflated, 4);
    }

    #[test]
    fn cascade_is_worker_invariant() {
        let cheap = analytic();
        let expensive = Marked::new();
        let objective = Objective::new(0.1, 10.0, 100.0);
        let cascade = CascadeBackend::new(&cheap, &expensive, objective).with_keep_frac(0.3);
        let archs = batch(11);
        let serial = cascade.evaluate_batch_workers(&archs, 1);
        for workers in [2usize, 4, 8] {
            let parallel = cascade.evaluate_batch_workers(&archs, workers);
            for (p, s) in parallel.iter().zip(&serial) {
                assert_eq!(p.latency_s.to_bits(), s.latency_s.to_bits(), "workers {workers}");
            }
        }
    }

    /// Expensive backend whose latency is so much higher than the cheap
    /// estimate that every top-k escalation dethrones itself.
    struct Inflating {
        inner: AnalyticBackend<fn(&Architecture) -> f64>,
    }

    impl Evaluator for Inflating {
        fn evaluate(&self, arch: &Architecture) -> Metrics {
            let m = self.inner.evaluate(arch);
            Metrics { latency_s: m.latency_s * 50.0, ..m }
        }
    }

    impl EvalBackend for Inflating {
        fn fidelity(&self) -> Fidelity {
            Fidelity::Simulated
        }

        fn cost_hint(&self) -> f64 {
            50.0
        }

        fn name(&self) -> &str {
            "inflating"
        }
    }

    #[test]
    fn batch_argmax_is_always_expensive_priced() {
        // The cheap tier is optimistic, so after the top-k pass the batch
        // argmax may hold an unverified estimate; the fixpoint loop must
        // keep escalating until the winner is honestly priced — even when
        // the expensive tier dethrones every candidate it re-prices.
        let cheap = analytic();
        let expensive = Inflating { inner: analytic() };
        let objective = Objective::new(0.1, 10.0, 100.0);
        let cascade = CascadeBackend::new(&cheap, &expensive, objective).with_keep_frac(0.25);
        let archs = batch(16);
        let metrics = cascade.evaluate_batch(&archs);
        // The argmax by screening score carries the 50x-inflated
        // (expensive-tier) latency, not a cheap estimate.
        let top = (0..archs.len())
            .max_by(|&i, &j| {
                let s = |m: &Metrics| {
                    if objective.feasible(m) {
                        objective.score(m)
                    } else {
                        -1.0
                    }
                };
                s(&metrics[i]).total_cmp(&s(&metrics[j])).then(j.cmp(&i))
            })
            .expect("non-empty");
        let honest = expensive.evaluate(&archs[top]);
        assert_eq!(metrics[top].latency_s.to_bits(), honest.latency_s.to_bits());
        // Escalation went beyond the initial top-k but stayed counted.
        let stats = cascade.stats();
        assert!(stats.expensive_evals > 4, "fixpoint must escalate past the top-k cut");
        assert!(stats.expensive_evals <= 16);
    }

    #[test]
    fn cascade_single_lookups_are_full_fidelity() {
        let cheap = analytic();
        let expensive = Marked::new();
        let cascade = CascadeBackend::new(&cheap, &expensive, Objective::default());
        let m = cascade.evaluate(&arch(16));
        assert_eq!(m.latency_s.to_bits(), expensive.evaluate(&arch(16)).latency_s.to_bits());
        assert_eq!(cascade.stats().expensive_evals, 1);
        assert_eq!(cascade.stats().cheap_evals, 0);
    }

    #[test]
    fn cascade_keep_bounds() {
        let cheap = analytic();
        let expensive = Marked::new();
        let objective = Objective::default();
        let c = CascadeBackend::new(&cheap, &expensive, objective);
        assert_eq!(c.keep_of(0.25, 16), 4);
        assert_eq!(c.keep_of(0.25, 1), 1, "min_keep floors the escalation");
        let none =
            CascadeBackend::new(&cheap, &expensive, objective).with_keep_frac(0.0).with_min_keep(0);
        assert_eq!(none.keep_of(0.0, 16), 0, "keep_frac 0 + min_keep 0 = pure cheap");
        let all = CascadeBackend::new(&cheap, &expensive, objective).with_keep_frac(1.0);
        assert_eq!(all.keep_of(1.0, 7), 7);
    }

    #[test]
    fn cascade_reports_top_tier_identity() {
        let cheap = analytic();
        let expensive = Marked::new();
        let c = CascadeBackend::new(&cheap, &expensive, Objective::default());
        assert_eq!(c.fidelity(), Fidelity::Simulated);
        assert_eq!(c.name(), "cascade(analytic->marked)");
        assert!(c.cost_hint() < expensive.cost_hint());
        assert!(c.cost_hint() > cheap.cost_hint());
    }

    #[test]
    fn cascade_empty_batch_is_empty() {
        let cheap = analytic();
        let expensive = Marked::new();
        let c = CascadeBackend::new(&cheap, &expensive, Objective::default());
        assert!(c.evaluate_batch(&[]).is_empty());
        assert_eq!(c.stats(), CascadeStats::default());
    }

    /// A middle tier for three-rung ladders: analytic numbers with a
    /// distinguishable tiny inflation and its own cost/fidelity identity.
    struct Mid {
        inner: AnalyticBackend<fn(&Architecture) -> f64>,
        calls: AtomicU64,
    }

    impl Mid {
        fn new() -> Self {
            Self { inner: analytic(), calls: AtomicU64::new(0) }
        }
    }

    impl Evaluator for Mid {
        fn evaluate(&self, arch: &Architecture) -> Metrics {
            self.calls.fetch_add(1, Ordering::Relaxed);
            let m = self.inner.evaluate(arch);
            Metrics { latency_s: m.latency_s * (1.0 + 1e-10), ..m }
        }
    }

    impl EvalBackend for Mid {
        fn fidelity(&self) -> Fidelity {
            Fidelity::Predicted
        }

        fn cost_hint(&self) -> f64 {
            5.0
        }

        fn name(&self) -> &str {
            "mid"
        }
    }

    #[test]
    fn three_tier_ladder_narrows_at_every_rung() {
        let cheap = analytic();
        let mid = Mid::new();
        let top = Marked::new();
        let objective = Objective::new(0.1, 10.0, 100.0);
        let ladder = CascadeBackend::ladder(vec![&cheap, &mid, &top], objective)
            .with_keep_fracs(&[0.5, 0.5]);
        let archs = batch(16);
        let metrics = ladder.evaluate_batch(&archs);
        assert_eq!(metrics.len(), 16);
        let tiers = ladder.tier_stats();
        assert_eq!(tiers.len(), 3);
        assert_eq!(tiers[0].evals, 16, "bottom tier sees everything");
        assert_eq!(tiers[1].evals, 8, "half escalate to the middle tier");
        // ceil(0.5 * 8) = 4 from the sweep; the honest-winner fixpoint may
        // add a few more, never more than the batch.
        assert!((4..=16).contains(&(tiers[2].evals as usize)));
        assert!(tiers[1].evals > tiers[2].evals, "each rung must narrow");
        assert_eq!(mid.calls.load(Ordering::Relaxed), 8);
        // The two-ended compat view matches the ladder's ends.
        let stats = ladder.stats();
        assert_eq!(stats.cheap_evals, tiers[0].evals);
        assert_eq!(stats.expensive_evals, tiers[2].evals);
    }

    #[test]
    fn ladder_winner_is_top_tier_priced() {
        let cheap = analytic();
        let mid = Mid::new();
        let top = Inflating { inner: analytic() };
        let objective = Objective::new(0.1, 10.0, 100.0);
        let ladder = CascadeBackend::ladder(vec![&cheap, &mid, &top], objective)
            .with_keep_fracs(&[0.25, 0.5]);
        let archs = batch(12);
        let metrics = ladder.evaluate_batch(&archs);
        let s = |m: &Metrics| {
            if objective.feasible(m) {
                objective.score(m)
            } else {
                -1.0
            }
        };
        let winner = (0..archs.len())
            .max_by(|&i, &j| s(&metrics[i]).total_cmp(&s(&metrics[j])).then(j.cmp(&i)))
            .expect("non-empty");
        let honest = top.evaluate(&archs[winner]);
        assert_eq!(metrics[winner].latency_s.to_bits(), honest.latency_s.to_bits());
    }

    #[test]
    fn ladder_reports_identity_and_cost() {
        let cheap = analytic();
        let mid = Mid::new();
        let top = Marked::new();
        let ladder = CascadeBackend::ladder(vec![&cheap, &mid, &top], Objective::default());
        assert_eq!(ladder.name(), "cascade(analytic->mid->marked)");
        assert_eq!(ladder.fidelity(), Fidelity::Simulated);
        assert!(ladder.cost_hint() > cheap.cost_hint());
        assert!(ladder.cost_hint() < top.cost_hint());
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn inverted_ladder_is_rejected() {
        let cheap = analytic();
        let top = Marked::new();
        let _ = CascadeBackend::ladder(vec![&top, &cheap], Objective::default());
    }

    #[test]
    #[should_panic(expected = "at least two tiers")]
    fn single_rung_ladder_is_rejected() {
        let cheap = analytic();
        let _ = CascadeBackend::ladder(vec![&cheap], Objective::default());
    }

    #[test]
    fn cost_hint_folds_min_keep() {
        let cheap = analytic();
        let expensive = Marked::new();
        let objective = Objective::default();
        // keep_frac 0.01 on a nominal batch of 16 would suggest ~0.16
        // escalations per batch, but min_keep = 1 floors it at one: the
        // effective fraction is 1/16, not 0.01.
        let c = CascadeBackend::new(&cheap, &expensive, objective)
            .with_keep_frac(0.01)
            .with_nominal_batch(16);
        let expected = 1.0 + (1.0 / 16.0) * expensive.cost_hint();
        assert!((c.cost_hint() - expected).abs() < 1e-12, "got {}", c.cost_hint());
        // A naive keep_frac-only estimate under-reports.
        assert!(c.cost_hint() > 1.0 + 0.01 * expensive.cost_hint());
        // min_keep 4 floors harder still.
        let floored = CascadeBackend::new(&cheap, &expensive, objective)
            .with_keep_frac(0.01)
            .with_min_keep(4)
            .with_nominal_batch(16);
        let expected = 1.0 + (4.0 / 16.0) * expensive.cost_hint();
        assert!((floored.cost_hint() - expected).abs() < 1e-12);
        // min_keep 0 + keep_frac 0 = pure screening: only the cheap cost.
        let none =
            CascadeBackend::new(&cheap, &expensive, objective).with_keep_frac(0.0).with_min_keep(0);
        assert_eq!(none.cost_hint(), cheap.cost_hint());
    }

    #[test]
    fn adaptive_keep_is_deterministic_and_bounded() {
        let objective = Objective::new(0.1, 10.0, 100.0);
        let run = || {
            let cheap = analytic();
            let expensive = Marked::new();
            let cascade = CascadeBackend::new(&cheap, &expensive, objective)
                .with_keep_frac(0.5)
                .with_adaptive_keep();
            let mut out = Vec::new();
            for round in 0..6 {
                let archs: Vec<Architecture> =
                    (0..12).map(|i| arch(8 * (i + round % 3 + 1))).collect();
                out.push(cascade.evaluate_batch(&archs));
            }
            (out, cascade.keep_fracs(), cascade.stats())
        };
        let (m1, fracs1, stats1) = run();
        let (m2, fracs2, stats2) = run();
        assert_eq!(stats1, stats2);
        assert_eq!(fracs1, fracs2, "adaptation must be a pure function of the batches");
        for (a, b) in m1.iter().flatten().zip(m2.iter().flatten()) {
            assert_eq!(a.latency_s.to_bits(), b.latency_s.to_bits());
        }
        // Marked's tiny inflation preserves ranks, so the screen keeps
        // being confirmed and the fraction anneals downward within bounds.
        assert!(fracs1[0] < 0.5, "confirmed screen must shrink the fraction: {fracs1:?}");
        assert!(fracs1[0] >= ADAPTIVE_FRAC_MIN);
    }

    #[test]
    fn non_adaptive_keep_fracs_never_move() {
        let cheap = analytic();
        let expensive = Marked::new();
        let objective = Objective::new(0.1, 10.0, 100.0);
        let cascade = CascadeBackend::new(&cheap, &expensive, objective).with_keep_frac(0.5);
        for _ in 0..3 {
            cascade.evaluate_batch(&batch(12));
        }
        assert_eq!(cascade.keep_fracs(), vec![0.5]);
    }

    #[test]
    fn spearman_rho_agrees_with_hand_values() {
        assert!((spearman_rho(&[1.0, 2.0, 3.0], &[10.0, 20.0, 30.0]) - 1.0).abs() < 1e-12);
        assert!((spearman_rho(&[1.0, 2.0, 3.0], &[30.0, 20.0, 10.0]) + 1.0).abs() < 1e-12);
        let mixed = spearman_rho(&[1.0, 2.0, 3.0, 4.0], &[2.0, 1.0, 4.0, 3.0]);
        assert!((mixed - 0.6).abs() < 1e-12);
    }
}
