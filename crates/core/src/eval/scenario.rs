//! Trace-driven scenario replay: the serializable timeline format the
//! runtime dispatcher is measured against.
//!
//! The paper's dispatcher (Sec. 3.6) exists to survive *changing*
//! conditions — bursty arrivals, shrinking uplinks, constraint flips —
//! but a single measured run only prices one steady state. A
//! [`ScenarioTrace`] describes a full timeline instead: an ordered list
//! of [`ScenarioSegment`]s, each starting at an absolute timestamp and
//! carrying its own arrival process ([`ArrivalSpec`]), an optional
//! device-uplink change, an optional
//! [`RuntimeConstraint`] flip, and the per-frame latency deadline the
//! segment is judged against.
//!
//! Traces are plain JSON (see `examples/scenario_trace.json` at the
//! repository root) and are replayed by `gcode_engine::ScenarioRunner`,
//! which emits one [`ScenarioReport`] per segment; a full run's reports
//! ride in [`SearchReport::scenarios`](crate::eval::SearchReport).
//!
//! Core cannot depend on the sim crate, so [`ArrivalSpec`] mirrors
//! `gcode_sim::ArrivalProcess` (Periodic/Poisson, seeded, deterministic);
//! the sim crate provides lossless `From` conversions in both directions
//! and property-tests that a converted Poisson spec reproduces
//! `simulate_open_loop` statistics exactly.
//!
//! # Example
//!
//! ```
//! use gcode_core::eval::scenario::{ArrivalSpec, ScenarioSegment, ScenarioTrace};
//! use gcode_core::zoo::RuntimeConstraint;
//!
//! let trace = ScenarioTrace::new("steady-then-burst", 7)
//!     .with_segment(ScenarioSegment::new(
//!         "steady", 0.0, 16, ArrivalSpec::Periodic { fps: 100.0 }, 0.040,
//!     ))
//!     .with_segment(
//!         ScenarioSegment::new(
//!             "burst", 0.16, 32, ArrivalSpec::Poisson { fps: 1000.0, seed: 7 }, 0.040,
//!         )
//!         .with_constraint(RuntimeConstraint::latency(0.020)),
//!     );
//! let json = trace.to_json().expect("serializable");
//! assert_eq!(ScenarioTrace::from_json(&json).expect("round trip"), trace);
//! assert_eq!(trace.total_frames(), 48);
//! ```

use crate::zoo::RuntimeConstraint;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// How frames arrive within one scenario segment — the serializable
/// mirror of `gcode_sim::ArrivalProcess` (which converts losslessly in
/// both directions via `From`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalSpec {
    /// Fixed-rate camera: one frame every `1/fps` seconds.
    Periodic {
        /// Frames per second.
        fps: f64,
    },
    /// Memoryless bursts: exponential inter-arrival gaps with mean
    /// `1/fps`, drawn from a stream seeded by `seed` (deterministic per
    /// seed).
    Poisson {
        /// Mean frames per second.
        fps: f64,
        /// Seed for the gap stream.
        seed: u64,
    },
}

impl ArrivalSpec {
    /// Mean arrival rate in frames per second.
    pub fn mean_fps(&self) -> f64 {
        match *self {
            ArrivalSpec::Periodic { fps } | ArrivalSpec::Poisson { fps, .. } => fps,
        }
    }

    /// Deterministic arrival offsets (seconds since segment start) for
    /// `frames` frames — the exact gap algorithm of
    /// `gcode_sim::simulate_open_loop`: periodic arrivals land every
    /// `1/fps`, Poisson gaps are `-ln(u)/fps` drawn from
    /// `ChaCha8Rng::seed_from_u64(seed)`.
    pub fn arrival_times(&self, frames: usize) -> Vec<f64> {
        match *self {
            ArrivalSpec::Periodic { fps } => {
                (0..frames).map(|i| i as f64 / fps.max(f64::EPSILON)).collect()
            }
            ArrivalSpec::Poisson { fps, seed } => {
                let mut rng = ChaCha8Rng::seed_from_u64(seed);
                let mut t = 0.0;
                (0..frames)
                    .map(|_| {
                        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                        let gap = -u.ln() / fps.max(f64::EPSILON);
                        let at = t;
                        t += gap;
                        at
                    })
                    .collect()
            }
        }
    }
}

/// One contiguous stretch of a scenario timeline: frames arriving under
/// one [`ArrivalSpec`], judged against one latency deadline, optionally
/// opening with a device-uplink change and/or a
/// [`RuntimeConstraint`] flip (both applied at the segment boundary,
/// before its first frame).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSegment {
    /// Human-readable segment name (`"steady"`, `"burst"`, …), echoed in
    /// the segment's [`ScenarioReport`].
    pub label: String,
    /// Absolute timeline position in seconds; segments are replayed in
    /// `start_s` order after [`ScenarioTrace::normalized`].
    pub start_s: f64,
    /// Frames this segment drives through the engine.
    pub frames: usize,
    /// Arrival process for this segment's frames.
    pub arrivals: ArrivalSpec,
    /// New device-uplink cap in Mbit/s applied at the segment boundary
    /// (`None` keeps the previous segment's uplink).
    pub uplink_mbps: Option<f64>,
    /// New runtime constraint dispatched at the segment boundary —
    /// `Some` re-runs zoo dispatch and hot-swaps the deployed plan if
    /// the admitted entry changed (`None` keeps the deployed plan).
    pub constraint: Option<RuntimeConstraint>,
    /// Per-frame sojourn deadline in seconds; the segment's deadline hit
    /// rate is the fraction of frames answered within it.
    pub deadline_s: f64,
}

impl ScenarioSegment {
    /// A segment with no uplink change and no constraint flip.
    pub fn new(
        label: impl Into<String>,
        start_s: f64,
        frames: usize,
        arrivals: ArrivalSpec,
        deadline_s: f64,
    ) -> Self {
        Self {
            label: label.into(),
            start_s,
            frames,
            arrivals,
            uplink_mbps: None,
            constraint: None,
            deadline_s,
        }
    }

    /// Caps the device uplink at `mbps` from this segment on.
    #[must_use]
    pub fn with_uplink_mbps(mut self, mbps: f64) -> Self {
        self.uplink_mbps = Some(mbps);
        self
    }

    /// Flips the runtime constraint at this segment's boundary.
    #[must_use]
    pub fn with_constraint(mut self, constraint: RuntimeConstraint) -> Self {
        self.constraint = Some(constraint);
        self
    }
}

/// A serializable scenario timeline: named, seeded, and an ordered list
/// of [`ScenarioSegment`]s. See the module docs for the format's role.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioTrace {
    /// Trace name, echoed in reports and logs.
    pub name: String,
    /// Trace-level seed: the replay's sample stream and any seed-less
    /// derived randomness key off it.
    pub seed: u64,
    /// Timeline segments; replay order is `start_s` order (see
    /// [`normalized`](Self::normalized)).
    pub segments: Vec<ScenarioSegment>,
}

impl ScenarioTrace {
    /// An empty trace; add segments with
    /// [`with_segment`](Self::with_segment).
    pub fn new(name: impl Into<String>, seed: u64) -> Self {
        Self { name: name.into(), seed, segments: Vec::new() }
    }

    /// Appends a segment.
    #[must_use]
    pub fn with_segment(mut self, segment: ScenarioSegment) -> Self {
        self.segments.push(segment);
        self
    }

    /// The trace with its segments in replay order: a stable sort by
    /// `start_s` (ties keep input order) with non-finite or negative
    /// start times clamped to `0.0`. After normalization segment
    /// timestamps are monotone non-decreasing.
    #[must_use]
    pub fn normalized(mut self) -> Self {
        for seg in &mut self.segments {
            if !seg.start_s.is_finite() || seg.start_s < 0.0 {
                seg.start_s = 0.0;
            }
        }
        self.segments
            .sort_by(|a, b| a.start_s.partial_cmp(&b.start_s).unwrap_or(std::cmp::Ordering::Equal));
        self
    }

    /// Whether segment timestamps are already monotone non-decreasing.
    pub fn is_normalized(&self) -> bool {
        self.segments.windows(2).all(|w| w[0].start_s <= w[1].start_s)
    }

    /// Total frames across every segment.
    pub fn total_frames(&self) -> usize {
        self.segments.iter().map(|s| s.frames).sum()
    }

    /// Rejects traces a replay cannot execute: no segments, a segment
    /// with zero frames, a non-positive arrival rate, or a non-positive
    /// deadline.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first offending
    /// segment.
    pub fn validate(&self) -> Result<(), String> {
        if self.segments.is_empty() {
            return Err(format!("trace `{}` has no segments", self.name));
        }
        for seg in &self.segments {
            if seg.frames == 0 {
                return Err(format!("segment `{}` has zero frames", seg.label));
            }
            if seg.arrivals.mean_fps() <= 0.0 {
                return Err(format!("segment `{}` has non-positive arrival rate", seg.label));
            }
            if !seg.deadline_s.is_finite() || seg.deadline_s <= 0.0 {
                return Err(format!("segment `{}` has non-positive deadline", seg.label));
            }
        }
        Ok(())
    }

    /// Serializes the trace to pretty JSON (the `--trace FILE` format).
    ///
    /// # Errors
    ///
    /// Propagates the serializer error.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Parses a trace from JSON.
    ///
    /// # Errors
    ///
    /// Propagates the parse error.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

/// One segment's replay outcome: what the live engine did while that
/// stretch of the timeline was driven through it. Emitted by
/// `gcode_engine::ScenarioRunner`, carried in
/// [`SearchReport::scenarios`](crate::eval::SearchReport).
///
/// Two kinds of fields coexist: *prediction-derived* numbers (`frames`,
/// `measured_accuracy`, `swaps`) are bit-reproducible for a given trace
/// and seed, while *wall-clock-derived* numbers (`deadline_hit_rate`,
/// `drops`, the latency percentiles) inherit OS-scheduler noise.
/// Determinism tests compare [`deterministic_view`](Self::deterministic_view)s.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioReport {
    /// Segment label, copied from the trace.
    pub label: String,
    /// Segment start on the trace timeline, seconds.
    pub start_s: f64,
    /// Frames replayed in this segment.
    pub frames: u64,
    /// Plan hot-swaps applied at this segment's boundary (0 when the
    /// constraint kept admitting the deployed plan).
    pub swaps: u64,
    /// Measured stream hit rate over this segment's frames: the fraction
    /// of deployed-engine predictions matching the held-out labels.
    pub measured_accuracy: f64,
    /// Fraction of frames whose sojourn (queueing per the segment's
    /// arrival process + measured service) met `deadline_s`.
    pub deadline_hit_rate: f64,
    /// Frames that missed the deadline (`frames - hits`).
    pub drops: u64,
    /// Median per-frame sojourn, seconds.
    pub p50_s: f64,
    /// 95th-percentile per-frame sojourn, seconds.
    pub p95_s: f64,
    /// 99th-percentile per-frame sojourn, seconds.
    pub p99_s: f64,
}

impl ScenarioReport {
    /// The report with every wall-clock-derived field zeroed, keeping
    /// only the prediction-derived fields that must replay bit-identically
    /// for a given trace and seed (see the type docs).
    #[must_use]
    pub fn deterministic_view(&self) -> Self {
        Self {
            deadline_hit_rate: 0.0,
            drops: 0,
            p50_s: 0.0,
            p95_s: 0.0,
            p99_s: 0.0,
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> ScenarioTrace {
        ScenarioTrace::new("t", 9)
            .with_segment(ScenarioSegment::new(
                "steady",
                0.0,
                8,
                ArrivalSpec::Periodic { fps: 50.0 },
                0.05,
            ))
            .with_segment(
                ScenarioSegment::new(
                    "burst",
                    0.16,
                    16,
                    ArrivalSpec::Poisson { fps: 500.0, seed: 3 },
                    0.05,
                )
                .with_uplink_mbps(1.0)
                .with_constraint(RuntimeConstraint::latency(0.02)),
            )
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let t = trace();
        let json = t.to_json().expect("serialize");
        assert_eq!(ScenarioTrace::from_json(&json).expect("parse"), t);
    }

    #[test]
    fn optional_fields_default_when_absent() {
        let json = r#"{
            "name": "minimal", "seed": 1,
            "segments": [{
                "label": "only", "start_s": 0.0, "frames": 4,
                "arrivals": { "Periodic": { "fps": 10.0 } },
                "deadline_s": 0.1
            }]
        }"#;
        let t = ScenarioTrace::from_json(json).expect("parse without optionals");
        assert_eq!(t.segments[0].uplink_mbps, None);
        assert_eq!(t.segments[0].constraint, None);
        t.validate().expect("minimal trace is valid");
    }

    #[test]
    fn normalized_sorts_segments_and_clamps_bad_starts() {
        let shuffled = ScenarioTrace::new("s", 0)
            .with_segment(ScenarioSegment::new(
                "c",
                2.0,
                1,
                ArrivalSpec::Periodic { fps: 1.0 },
                1.0,
            ))
            .with_segment(ScenarioSegment::new(
                "a",
                -5.0,
                1,
                ArrivalSpec::Periodic { fps: 1.0 },
                1.0,
            ))
            .with_segment(ScenarioSegment::new(
                "b",
                1.0,
                1,
                ArrivalSpec::Periodic { fps: 1.0 },
                1.0,
            ));
        assert!(!shuffled.is_normalized());
        let n = shuffled.normalized();
        assert!(n.is_normalized());
        let labels: Vec<&str> = n.segments.iter().map(|s| s.label.as_str()).collect();
        assert_eq!(labels, ["a", "b", "c"]);
        assert_eq!(n.segments[0].start_s, 0.0, "negative start clamped");
    }

    #[test]
    fn validate_rejects_degenerate_traces() {
        assert!(ScenarioTrace::new("empty", 0).validate().is_err());
        let zero_frames = ScenarioTrace::new("z", 0).with_segment(ScenarioSegment::new(
            "s",
            0.0,
            0,
            ArrivalSpec::Periodic { fps: 1.0 },
            1.0,
        ));
        assert!(zero_frames.validate().is_err());
        let bad_rate = ScenarioTrace::new("r", 0).with_segment(ScenarioSegment::new(
            "s",
            0.0,
            1,
            ArrivalSpec::Periodic { fps: 0.0 },
            1.0,
        ));
        assert!(bad_rate.validate().is_err());
        let bad_deadline = ScenarioTrace::new("d", 0).with_segment(ScenarioSegment::new(
            "s",
            0.0,
            1,
            ArrivalSpec::Periodic { fps: 1.0 },
            0.0,
        ));
        assert!(bad_deadline.validate().is_err());
    }

    #[test]
    fn arrival_times_are_deterministic_and_start_at_zero() {
        let periodic = ArrivalSpec::Periodic { fps: 10.0 };
        assert_eq!(periodic.arrival_times(3), vec![0.0, 0.1, 0.2]);

        let poisson = ArrivalSpec::Poisson { fps: 100.0, seed: 42 };
        let a = poisson.arrival_times(64);
        let b = poisson.arrival_times(64);
        assert_eq!(a, b, "same seed, same arrivals");
        assert_eq!(a[0], 0.0, "first frame arrives at segment start");
        assert!(a.windows(2).all(|w| w[0] < w[1]), "arrivals strictly increase");
        let other = ArrivalSpec::Poisson { fps: 100.0, seed: 43 }.arrival_times(64);
        assert_ne!(a, other, "different seed, different gaps");
    }

    #[test]
    fn deterministic_view_zeroes_only_wall_clock_fields() {
        let r = ScenarioReport {
            label: "burst".to_string(),
            start_s: 0.16,
            frames: 16,
            swaps: 1,
            measured_accuracy: 0.75,
            deadline_hit_rate: 0.5,
            drops: 8,
            p50_s: 0.01,
            p95_s: 0.02,
            p99_s: 0.03,
        };
        let v = r.deterministic_view();
        assert_eq!(
            (v.label.as_str(), v.start_s, v.frames, v.swaps, v.measured_accuracy),
            ("burst", 0.16, 16, 1, 0.75)
        );
        assert_eq!(
            (v.deadline_hit_rate, v.drops, v.p50_s, v.p95_s, v.p99_s),
            (0.0, 0, 0.0, 0.0, 0.0)
        );
    }
}
