//! Co-inference architectures: op sequences with derived mapping, validity,
//! shape tracing and lowering to runnable layers.

use crate::op::{Op, OpKind, Placement, SampleFn};
use gcode_nn::seq::LayerSpec;
use serde::{Deserialize, Serialize};

/// Static description of the workload an architecture will run on — the
/// handful of numbers that drive every cost computation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// Nodes per input graph (ModelNet40: 1024; MR: ~17).
    pub num_nodes: usize,
    /// Input feature width (ModelNet40: 3; MR: 300).
    pub in_dim: usize,
    /// Whether samples arrive with a pre-built graph (text) or the model
    /// must build one itself via `Sample` (point clouds).
    pub provides_graph: bool,
    /// Mean degree of the provided graph (ignored if `provides_graph` is
    /// false until a `Sample` op sets the degree).
    pub provided_degree: usize,
    /// Number of output classes.
    pub num_classes: usize,
}

impl WorkloadProfile {
    /// ModelNet40-scale point-cloud profile.
    pub fn modelnet40() -> Self {
        Self {
            num_nodes: 1024,
            in_dim: 3,
            provides_graph: false,
            provided_degree: 0,
            num_classes: 40,
        }
    }

    /// MR-scale text-graph profile.
    pub fn mr() -> Self {
        Self {
            num_nodes: 17,
            in_dim: 300,
            provides_graph: true,
            provided_degree: 4,
            num_classes: 2,
        }
    }

    /// A reduced-size point-cloud profile for fast tests and examples.
    pub fn modelnet40_mini(num_nodes: usize, num_classes: usize) -> Self {
        Self { num_nodes, in_dim: 3, provides_graph: false, provided_degree: 0, num_classes }
    }
}

/// Why an architecture failed validation (Sec. 3.4's `Check`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ValidityError {
    /// Two `Communicate` ops in a row transfer data for nothing.
    ConsecutiveCommunicate,
    /// A node-level op (Sample/Aggregate/EdgeCombine/GlobalPool) appears
    /// after pooling already collapsed the nodes.
    NodeOpAfterPool(usize),
    /// More than one `GlobalPool`.
    MultiplePools,
    /// No `GlobalPool` — graph classification needs a readout.
    MissingPool,
    /// `Aggregate`/`EdgeCombine` before any graph exists.
    AggregateWithoutGraph(usize),
    /// Empty op list.
    Empty,
}

impl std::fmt::Display for ValidityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidityError::ConsecutiveCommunicate => {
                write!(f, "consecutive communicate operations")
            }
            ValidityError::NodeOpAfterPool(i) => {
                write!(f, "node-level op at index {i} after global pooling")
            }
            ValidityError::MultiplePools => write!(f, "more than one global pooling"),
            ValidityError::MissingPool => write!(f, "no global pooling readout"),
            ValidityError::AggregateWithoutGraph(i) => {
                write!(f, "aggregate at index {i} before any graph is built")
            }
            ValidityError::Empty => write!(f, "empty architecture"),
        }
    }
}

impl std::error::Error for ValidityError {}

/// A GNN co-inference architecture: an operation sequence in which
/// `Communicate` ops encode the device/edge mapping.
///
/// # Example
///
/// ```
/// use gcode_core::arch::{Architecture, WorkloadProfile};
/// use gcode_core::op::{Op, Placement, SampleFn};
/// use gcode_nn::agg::AggMode;
/// use gcode_nn::pool::PoolMode;
///
/// let arch = Architecture::new(vec![
///     Op::Sample(SampleFn::Knn { k: 20 }),
///     Op::Communicate,
///     Op::Aggregate(AggMode::Max),
///     Op::Combine { dim: 32 },
///     Op::GlobalPool(PoolMode::Max),
/// ]);
/// assert!(arch.validate(&WorkloadProfile::modelnet40()).is_ok());
/// assert_eq!(arch.placements()[0], Placement::Device);
/// assert_eq!(arch.placements()[2], Placement::Edge);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Architecture {
    ops: Vec<Op>,
}

impl Architecture {
    /// Wraps an op sequence. No validation is performed here; call
    /// [`Architecture::validate`].
    pub fn new(ops: Vec<Op>) -> Self {
        Self { ops }
    }

    /// The operation sequence.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of `Communicate` ops.
    pub fn num_communicates(&self) -> usize {
        self.ops.iter().filter(|o| o.kind() == OpKind::Communicate).count()
    }

    /// Per-op placement: ops start on the device and flip sides at every
    /// `Communicate` (the `Communicate` op itself is attributed to the
    /// link, but is listed with the side that *initiates* the transfer).
    pub fn placements(&self) -> Vec<Placement> {
        let mut side = Placement::Device;
        let mut out = Vec::with_capacity(self.ops.len());
        for op in &self.ops {
            out.push(side);
            if op.kind() == OpKind::Communicate {
                side = side.flipped();
            }
        }
        out
    }

    /// Placement of the final output (where the classifier result lands).
    pub fn output_placement(&self) -> Placement {
        if self.num_communicates().is_multiple_of(2) {
            Placement::Device
        } else {
            Placement::Edge
        }
    }

    /// Validates the sequence against the paper's rules (Sec. 3.4): no
    /// consecutive `Communicate`, no node ops after pooling, exactly one
    /// pooling readout, and no aggregation before a graph exists.
    ///
    /// # Errors
    ///
    /// Returns the first [`ValidityError`] encountered.
    pub fn validate(&self, profile: &WorkloadProfile) -> Result<(), ValidityError> {
        if self.ops.is_empty() {
            return Err(ValidityError::Empty);
        }
        let mut pooled = false;
        let mut has_graph = profile.provides_graph;
        let mut pool_count = 0usize;
        let mut prev_comm = false;
        for (i, op) in self.ops.iter().enumerate() {
            let is_comm = op.kind() == OpKind::Communicate;
            if is_comm && prev_comm {
                return Err(ValidityError::ConsecutiveCommunicate);
            }
            prev_comm = is_comm;
            if pooled && op.needs_nodes() {
                // A second pool is reported as MultiplePools, not as a
                // generic node-op violation.
                if matches!(op, Op::GlobalPool(_)) {
                    return Err(ValidityError::MultiplePools);
                }
                return Err(ValidityError::NodeOpAfterPool(i));
            }
            match op {
                Op::Sample(_) => has_graph = true,
                Op::Aggregate(_) | Op::EdgeCombine { .. } if !has_graph => {
                    return Err(ValidityError::AggregateWithoutGraph(i));
                }
                Op::GlobalPool(_) => {
                    pool_count += 1;
                    if pool_count > 1 {
                        return Err(ValidityError::MultiplePools);
                    }
                    pooled = true;
                }
                _ => {}
            }
        }
        if pool_count == 0 {
            return Err(ValidityError::MissingPool);
        }
        Ok(())
    }

    /// Lowers to runnable [`LayerSpec`]s for the supernet executor.
    /// `Communicate` lowers to `Identity` (it is compute-free), and
    /// `EdgeCombine` approximates to a node `Combine` (only baselines use
    /// it, and their accuracy is taken from reported numbers).
    pub fn lower(&self) -> Vec<LayerSpec> {
        self.ops
            .iter()
            .map(|op| match *op {
                Op::Sample(SampleFn::Knn { k }) => LayerSpec::BuildKnn { k },
                Op::Sample(SampleFn::Random { k }) => LayerSpec::BuildRandom { k },
                Op::Aggregate(m) => LayerSpec::Aggregate(m),
                Op::Combine { dim } | Op::EdgeCombine { dim } => {
                    LayerSpec::Combine { out_dim: dim }
                }
                Op::GlobalPool(m) => LayerSpec::GlobalPool(m),
                Op::Communicate | Op::Identity => LayerSpec::Identity,
            })
            .collect()
    }

    /// Compact single-line rendering, e.g.
    /// `"Sample(knn,k=20) → Communicate → Aggregate(max)"`.
    pub fn signature(&self) -> String {
        self.ops.iter().map(|o| o.to_string()).collect::<Vec<_>>().join(" → ")
    }

    /// Multi-line ASCII rendering with device/edge lanes — the Fig. 11
    /// visualization.
    pub fn render(&self) -> String {
        let placements = self.placements();
        let mut out = String::new();
        out.push_str("Input (device)\n");
        for (op, side) in self.ops.iter().zip(&placements) {
            if op.kind() == OpKind::Communicate {
                let arrow = match side {
                    Placement::Device => "device ──▶ edge",
                    Placement::Edge => "edge ──▶ device",
                };
                out.push_str(&format!("  ~~~ Communicate [{arrow}] ~~~\n"));
            } else {
                let lane = match side {
                    Placement::Device => "",
                    Placement::Edge => "                    ",
                };
                out.push_str(&format!("{lane}  {op}\n"));
            }
        }
        out.push_str(&format!("Output ({})\n", self.output_placement()));
        out
    }
}

impl std::fmt::Display for Architecture {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.signature())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcode_nn::agg::AggMode;
    use gcode_nn::pool::PoolMode;

    fn pc() -> WorkloadProfile {
        WorkloadProfile::modelnet40()
    }

    fn valid_ops() -> Vec<Op> {
        vec![
            Op::Sample(SampleFn::Knn { k: 20 }),
            Op::Aggregate(AggMode::Max),
            Op::Combine { dim: 32 },
            Op::Communicate,
            Op::Combine { dim: 64 },
            Op::GlobalPool(PoolMode::Sum),
        ]
    }

    #[test]
    fn valid_architecture_passes() {
        assert!(Architecture::new(valid_ops()).validate(&pc()).is_ok());
    }

    #[test]
    fn empty_rejected() {
        assert_eq!(Architecture::new(vec![]).validate(&pc()), Err(ValidityError::Empty));
    }

    #[test]
    fn consecutive_communicate_rejected() {
        let mut ops = valid_ops();
        ops.insert(4, Op::Communicate);
        assert_eq!(
            Architecture::new(ops).validate(&pc()),
            Err(ValidityError::ConsecutiveCommunicate)
        );
    }

    #[test]
    fn aggregate_after_pool_rejected() {
        let mut ops = valid_ops();
        ops.push(Op::Aggregate(AggMode::Add));
        assert_eq!(Architecture::new(ops).validate(&pc()), Err(ValidityError::NodeOpAfterPool(6)));
    }

    #[test]
    fn combine_after_pool_allowed() {
        let mut ops = valid_ops();
        ops.push(Op::Combine { dim: 16 });
        assert!(Architecture::new(ops).validate(&pc()).is_ok());
    }

    #[test]
    fn aggregate_without_graph_rejected_for_pointclouds() {
        let ops = vec![Op::Aggregate(AggMode::Max), Op::GlobalPool(PoolMode::Sum)];
        assert_eq!(
            Architecture::new(ops).validate(&pc()),
            Err(ValidityError::AggregateWithoutGraph(0))
        );
    }

    #[test]
    fn aggregate_without_sample_ok_for_text() {
        let ops = vec![Op::Aggregate(AggMode::Mean), Op::GlobalPool(PoolMode::Mean)];
        assert!(Architecture::new(ops).validate(&WorkloadProfile::mr()).is_ok());
    }

    #[test]
    fn missing_pool_rejected() {
        let ops = vec![Op::Sample(SampleFn::Knn { k: 5 }), Op::Combine { dim: 16 }];
        assert_eq!(Architecture::new(ops).validate(&pc()), Err(ValidityError::MissingPool));
    }

    #[test]
    fn double_pool_rejected() {
        let ops = vec![
            Op::Sample(SampleFn::Knn { k: 5 }),
            Op::GlobalPool(PoolMode::Sum),
            Op::GlobalPool(PoolMode::Max),
        ];
        assert_eq!(Architecture::new(ops).validate(&pc()), Err(ValidityError::MultiplePools));
    }

    #[test]
    fn placements_alternate_at_communicate() {
        let arch = Architecture::new(valid_ops());
        let p = arch.placements();
        assert_eq!(p[0], Placement::Device);
        assert_eq!(p[3], Placement::Device); // the Communicate op itself
        assert_eq!(p[4], Placement::Edge);
        assert_eq!(arch.output_placement(), Placement::Edge);
    }

    #[test]
    fn output_returns_to_device_after_two_communicates() {
        let ops = vec![
            Op::Communicate,
            Op::Combine { dim: 16 },
            Op::GlobalPool(PoolMode::Sum),
            Op::Communicate,
            Op::Combine { dim: 16 },
        ];
        let arch = Architecture::new(ops);
        assert_eq!(arch.output_placement(), Placement::Device);
    }

    #[test]
    fn lowering_maps_communicate_to_identity() {
        let arch = Architecture::new(valid_ops());
        let specs = arch.lower();
        assert_eq!(specs.len(), arch.len());
        assert_eq!(specs[3], gcode_nn::seq::LayerSpec::Identity);
    }

    #[test]
    fn render_mentions_both_sides() {
        let arch = Architecture::new(valid_ops());
        let r = arch.render();
        assert!(r.contains("device ──▶ edge"));
        assert!(r.contains("Output (edge)"));
    }

    #[test]
    fn signature_round_trips_ops() {
        let arch = Architecture::new(valid_ops());
        let s = arch.signature();
        assert!(s.contains("Sample(knn,k=20)"));
        assert!(s.contains("Communicate"));
    }
}
