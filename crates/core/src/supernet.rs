//! One-shot supernet: shared-weight pretraining and fast accuracy queries.
//!
//! GCoDE "organizes the co-inference design space into a supernet,
//! decoupling the training and searching processes via a one-shot approach"
//! (Sec. 3.1). We pretrain with single-path sampling: each step draws a
//! random *valid* architecture and trains only the weights on its path; all
//! paths share weights through [`gcode_nn::seq::WeightBank`]. During search,
//! a candidate's accuracy is a forward pass with the shared weights — no
//! per-candidate training.

use crate::arch::Architecture;
use crate::space::DesignSpace;
use gcode_graph::datasets::Sample;
use gcode_nn::seq::{evaluate_accuracy, train_step, GraphInput, WeightBank};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A pretrained one-shot supernet over a design space.
pub struct SuperNet {
    space: DesignSpace,
    bank: WeightBank,
    rng: ChaCha8Rng,
}

impl SuperNet {
    /// Creates an untrained supernet.
    pub fn new(space: DesignSpace, seed: u64) -> Self {
        Self {
            bank: WeightBank::new(space.profile.num_classes, seed),
            space,
            rng: ChaCha8Rng::seed_from_u64(seed ^ 0x50E7_AC3D),
        }
    }

    /// The design space this supernet spans.
    pub fn space(&self) -> &DesignSpace {
        &self.space
    }

    /// Pretrains shared weights: `steps` rounds of (sample a valid path,
    /// run one SGD epoch of that path over `train`). Returns the final
    /// round's mean loss.
    pub fn pretrain(&mut self, train: &[Sample], steps: usize, lr: f32) -> f32 {
        let mut last = 0.0;
        for _ in 0..steps {
            let (arch, _) = self.space.sample_valid(&mut self.rng, 100_000);
            last = self.train_arch(&arch, train, 1, lr);
        }
        last
    }

    /// Trains one specific architecture's path for `epochs`; returns the
    /// final mean loss. Also used to fine-tune a search winner.
    pub fn train_arch(
        &mut self,
        arch: &Architecture,
        train: &[Sample],
        epochs: usize,
        lr: f32,
    ) -> f32 {
        let specs = arch.lower();
        let mut mean = 0.0;
        for _ in 0..epochs {
            let mut total = 0.0;
            for s in train {
                total += train_step(
                    &specs,
                    GraphInput { features: &s.features, graph: s.graph.as_ref() },
                    s.label,
                    &mut self.bank,
                    lr,
                    &mut self.rng,
                );
            }
            mean = total / train.len().max(1) as f32;
        }
        mean
    }

    /// Validation accuracy of a candidate with the shared weights — the
    /// `acc_val` term of Alg. 1.
    pub fn accuracy(&mut self, arch: &Architecture, val: &[Sample]) -> f64 {
        let specs = arch.lower();
        evaluate_accuracy(&specs, val, &mut self.bank, &mut self.rng)
    }

    /// Number of weight tensors materialized so far.
    pub fn num_weights(&self) -> usize {
        self.bank.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::WorkloadProfile;
    use crate::op::{Op, SampleFn};
    use gcode_graph::datasets::{PointCloudDataset, TextGraphDataset};
    use gcode_nn::agg::AggMode;
    use gcode_nn::pool::PoolMode;

    #[test]
    fn pretraining_materializes_shared_weights() {
        let profile = WorkloadProfile::modelnet40_mini(16, 4);
        let space = DesignSpace::paper(profile);
        let ds = PointCloudDataset::generate(8, 16, 4, 3);
        let mut net = SuperNet::new(space, 7);
        assert_eq!(net.num_weights(), 0);
        net.pretrain(ds.samples(), 3, 0.01);
        assert!(net.num_weights() > 0);
    }

    #[test]
    fn accuracy_query_in_unit_range() {
        let profile = WorkloadProfile::modelnet40_mini(16, 4);
        let space = DesignSpace::paper(profile);
        let ds = PointCloudDataset::generate(8, 16, 4, 5);
        let mut net = SuperNet::new(space.clone(), 9);
        let (arch, _) = space.sample_valid(&mut ChaCha8Rng::seed_from_u64(1), 100_000);
        let acc = net.accuracy(&arch, ds.samples());
        assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    fn dedicated_training_learns_text_task() {
        let profile = WorkloadProfile {
            num_nodes: 12,
            in_dim: 32,
            provides_graph: true,
            provided_degree: 4,
            num_classes: 2,
        };
        let space = DesignSpace::paper(profile);
        let ds = TextGraphDataset::generate(20, 12, 32, 4);
        let mut net = SuperNet::new(space, 11);
        let arch = Architecture::new(vec![
            Op::Combine { dim: 16 },
            Op::Aggregate(AggMode::Mean),
            Op::GlobalPool(PoolMode::Mean),
        ]);
        net.train_arch(&arch, ds.samples(), 40, 0.02);
        let acc = net.accuracy(&arch, ds.samples());
        assert!(acc > 0.8, "trained path should fit, got {acc}");
    }

    #[test]
    fn shared_weights_benefit_unseen_sibling_architecture() {
        // Train arch A; arch B sharing A's Combine slot should beat an
        // untrained supernet on the same data more often than not. We just
        // check the query path works and returns a valid accuracy.
        let profile = WorkloadProfile::modelnet40_mini(16, 2);
        let space = DesignSpace::paper(profile);
        let ds = PointCloudDataset::generate(10, 16, 2, 6);
        let mut net = SuperNet::new(space, 13);
        let a = Architecture::new(vec![
            Op::Sample(SampleFn::Knn { k: 8 }),
            Op::Aggregate(AggMode::Max),
            Op::Combine { dim: 16 },
            Op::GlobalPool(PoolMode::Max),
        ]);
        let b = Architecture::new(vec![
            Op::Sample(SampleFn::Knn { k: 8 }),
            Op::Aggregate(AggMode::Max),
            Op::Combine { dim: 16 },
            Op::Communicate,
            Op::GlobalPool(PoolMode::Max),
        ]);
        net.train_arch(&a, ds.samples(), 20, 0.02);
        let acc_b = net.accuracy(&b, ds.samples());
        assert!((0.0..=1.0).contains(&acc_b));
    }
}
