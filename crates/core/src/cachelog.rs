//! Append-only persistent memo cache: `candidate × fidelity tag ×
//! objective → Metrics` records that survive the process.
//!
//! The in-memory memo cache ([`crate::eval::SearchSession`]) dies with the
//! search, so a server workload re-measures identical candidates across
//! sessions and a re-run CLI search starts cold. The `CacheLog` is the
//! durable twin: every fresh evaluation appends one binary record, and
//! opening the log replays all of them into a hash map (last-write-wins)
//! so repeated searches start warm.
//!
//! # File format
//!
//! ```text
//! [b"GCLG"][u8 format version]
//! record*:  [u8 type][u32 body len][body…][u32 FNV-1a checksum]
//! ```
//!
//! The checksum covers the type byte, the length field and the body, so a
//! bit flip anywhere in a record is detected. Replay stops at the first
//! record that fails its checksum, declares an impossible length, or runs
//! past the end of the file — a truncated or corrupted tail (a crash
//! mid-append, a flipped bit) silently costs the damaged suffix, never
//! the valid prefix, and the file is clipped back to that prefix so new
//! appends stay readable.
//!
//! Record type 0 carries a [`Metrics`] entry keyed by three stable 64-bit
//! FNV-1a hashes: the architecture ([`arch_key`] over its signature
//! string), the backend fidelity tag ([`tag_key`] — everything that
//! affects the numbers: backend kind, seeds, frame counts, uplink), and
//! the objective ([`objective_key`] over the exact f64 bits). Record
//! type 1 carries an opaque blob under a caller-defined `(u64, u64)` key —
//! `gcode-serve` uses it to persist deployed-plan measurements without
//! this crate knowing the engine's types.
//!
//! # Example
//!
//! ```
//! use gcode_core::cachelog::{arch_key, objective_key, tag_key, CacheLog};
//! use gcode_core::eval::{Metrics, Objective};
//!
//! let dir = std::env::temp_dir().join("gcode-cachelog-doc");
//! std::fs::create_dir_all(&dir).unwrap();
//! let path = dir.join("doc.gclg");
//! # let _ = std::fs::remove_file(&path);
//! let m = Metrics { accuracy: 0.9, latency_s: 0.01, energy_j: 0.2 };
//! let key = (7, tag_key("sim|seed4"), objective_key(&Objective::default()));
//!
//! let mut log = CacheLog::open(&path).unwrap();
//! log.put(key.0, key.1, key.2, m);
//! drop(log);
//!
//! // A fresh process sees the record.
//! let warm = CacheLog::open(&path).unwrap();
//! assert_eq!(warm.get(key.0, key.1, key.2), Some(m));
//! # std::fs::remove_file(&path).unwrap();
//! ```

use crate::arch::Architecture;
use crate::eval::{Metrics, Objective};
use std::collections::HashMap;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// Magic bytes leading every cache-log file.
const MAGIC: &[u8; 4] = b"GCLG";

/// Format version byte after the magic. Bump on any layout change; an
/// unknown version is treated as an unreadable log (fresh cache), never
/// misparsed.
const FORMAT_VERSION: u8 = 1;

/// Record type for a keyed [`Metrics`] entry.
const RECORD_METRICS: u8 = 0;

/// Record type for an opaque keyed blob.
const RECORD_BLOB: u8 = 1;

/// Fixed body size of a metrics record: three u64 keys + three f64 fields.
const METRICS_BODY_LEN: usize = 48;

/// Largest record body accepted at replay — a corrupted length field must
/// not drive a multi-GiB allocation.
const MAX_RECORD_LEN: usize = 16 << 20;

/// FNV-1a over `bytes`: the stable, dependency-free hash behind every
/// cache key and record checksum.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Stable cache key of an architecture: FNV-1a over its
/// [`signature`](Architecture::signature) string, which names every op
/// and parameter in order.
pub fn arch_key(arch: &Architecture) -> u64 {
    fnv1a(arch.signature().as_bytes())
}

/// Stable cache key of a backend fidelity tag. The tag string must encode
/// everything that affects the metrics (backend kind, seeds, frame and
/// warmup counts, uplink caps, workload) — two configurations that would
/// measure differently must never share a tag.
pub fn tag_key(tag: &str) -> u64 {
    fnv1a(tag.as_bytes())
}

/// Stable cache key of an objective: FNV-1a over the exact bit patterns
/// of its three f64 fields, so any change to `λ` or a constraint starts a
/// fresh namespace.
pub fn objective_key(objective: &Objective) -> u64 {
    let mut buf = [0u8; 24];
    buf[..8].copy_from_slice(&objective.lambda.to_bits().to_le_bytes());
    buf[8..16].copy_from_slice(&objective.latency_constraint_s.to_bits().to_le_bytes());
    buf[16..].copy_from_slice(&objective.energy_constraint_j.to_bits().to_le_bytes());
    fnv1a(&buf)
}

/// A cache log shared across search workers / server sessions.
pub type SharedCacheLog = Arc<Mutex<CacheLog>>;

/// Opens `path` as a [`SharedCacheLog`] ready to hand to concurrent users.
///
/// # Errors
///
/// Propagates I/O errors from [`CacheLog::open`].
pub fn open_shared(path: impl AsRef<Path>) -> std::io::Result<SharedCacheLog> {
    Ok(Arc::new(Mutex::new(CacheLog::open(path)?)))
}

/// The persistent memo cache: an append-only record log replayed into
/// hash maps on open. See the module docs for the format and the
/// corruption-containment contract.
pub struct CacheLog {
    file: std::fs::File,
    metrics: HashMap<(u64, u64, u64), Metrics>,
    blobs: HashMap<(u64, u64), Vec<u8>>,
    append_errors: u64,
    recovered_bytes: u64,
}

impl CacheLog {
    /// Opens (creating if absent) the log at `path`, replaying every valid
    /// record. A corrupt or truncated tail is clipped off — its byte count
    /// is reported by [`recovered_bytes`](Self::recovered_bytes) — so the
    /// valid prefix stays usable and future appends stay readable. A file
    /// whose header is unreadable (wrong magic or a future format version)
    /// is left untouched and treated as an empty cache in memory.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors (not corruption, which is contained).
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let mut file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut raw = Vec::new();
        file.read_to_end(&mut raw)?;
        let mut log = Self {
            file,
            metrics: HashMap::new(),
            blobs: HashMap::new(),
            append_errors: 0,
            recovered_bytes: 0,
        };
        if raw.is_empty() {
            log.file.write_all(MAGIC)?;
            log.file.write_all(&[FORMAT_VERSION])?;
            log.file.flush()?;
            return Ok(log);
        }
        if raw.len() < MAGIC.len() + 1 || &raw[..4] != MAGIC || raw[4] != FORMAT_VERSION {
            // Not ours (or from a future format): serve an empty cache and
            // never append into a file we cannot parse.
            log.append_errors = u64::MAX;
            return Ok(log);
        }
        let valid_end = log.replay(&raw[5..]) + 5;
        if valid_end < raw.len() {
            // Clip the damaged tail so the next append lands at a record
            // boundary instead of extending garbage.
            log.recovered_bytes = (raw.len() - valid_end) as u64;
            log.file.set_len(valid_end as u64)?;
        }
        log.file.seek(SeekFrom::End(0))?;
        Ok(log)
    }

    /// Replays records from `buf`, returning how many bytes formed valid
    /// records (the offset of the first damaged byte, if any).
    fn replay(&mut self, buf: &[u8]) -> usize {
        let mut pos = 0usize;
        while buf.len() - pos >= 9 {
            let record_type = buf[pos];
            let body_len =
                u32::from_le_bytes(buf[pos + 1..pos + 5].try_into().expect("4 bytes")) as usize;
            if body_len > MAX_RECORD_LEN || buf.len() - pos < 9 + body_len {
                break;
            }
            let body = &buf[pos + 5..pos + 5 + body_len];
            let stored = u32::from_le_bytes(
                buf[pos + 5 + body_len..pos + 9 + body_len].try_into().expect("4 bytes"),
            );
            if record_checksum(record_type, body) != stored {
                break;
            }
            match record_type {
                RECORD_METRICS if body_len == METRICS_BODY_LEN => {
                    let k = |i: usize| {
                        u64::from_le_bytes(body[8 * i..8 * i + 8].try_into().expect("8 bytes"))
                    };
                    let m = Metrics {
                        accuracy: f64::from_bits(k(3)),
                        latency_s: f64::from_bits(k(4)),
                        energy_j: f64::from_bits(k(5)),
                    };
                    self.metrics.insert((k(0), k(1), k(2)), m);
                }
                RECORD_BLOB if body_len >= 16 => {
                    let k1 = u64::from_le_bytes(body[..8].try_into().expect("8 bytes"));
                    let k2 = u64::from_le_bytes(body[8..16].try_into().expect("8 bytes"));
                    self.blobs.insert((k1, k2), body[16..].to_vec());
                }
                _ => break, // unknown type or malformed body: damaged tail
            }
            pos += 9 + body_len;
        }
        pos
    }

    /// Number of distinct metrics entries replayed or written.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Whether the log holds no metrics entries.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Number of distinct blob entries.
    pub fn blobs_len(&self) -> usize {
        self.blobs.len()
    }

    /// Appends that failed (I/O errors are swallowed so a full disk can
    /// never kill a search — the cache just stops growing).
    pub fn append_errors(&self) -> u64 {
        self.append_errors
    }

    /// Bytes of damaged tail discarded when the log was opened.
    pub fn recovered_bytes(&self) -> u64 {
        self.recovered_bytes
    }

    /// Looks up the metrics stored for `(arch, tag, objective)`.
    pub fn get(&self, arch: u64, tag: u64, objective: u64) -> Option<Metrics> {
        self.metrics.get(&(arch, tag, objective)).copied()
    }

    /// Stores metrics for `(arch, tag, objective)`, writing through to the
    /// file. Re-putting an identical value is a no-op (no file growth on
    /// warm runs); a changed value appends a superseding record
    /// (last-write-wins on replay).
    pub fn put(&mut self, arch: u64, tag: u64, objective: u64, m: Metrics) {
        if self.metrics.get(&(arch, tag, objective)) == Some(&m) {
            return;
        }
        self.metrics.insert((arch, tag, objective), m);
        let mut body = Vec::with_capacity(METRICS_BODY_LEN);
        for v in [
            arch,
            tag,
            objective,
            m.accuracy.to_bits(),
            m.latency_s.to_bits(),
            m.energy_j.to_bits(),
        ] {
            body.extend_from_slice(&v.to_le_bytes());
        }
        self.append(RECORD_METRICS, &body);
    }

    /// Looks up the blob stored under `key`.
    pub fn get_blob(&self, key: (u64, u64)) -> Option<&[u8]> {
        self.blobs.get(&key).map(Vec::as_slice)
    }

    /// Stores an opaque blob under `key`, writing through to the file.
    /// Identical re-puts are no-ops, like [`put`](Self::put).
    pub fn put_blob(&mut self, key: (u64, u64), blob: &[u8]) {
        if self.blobs.get(&key).is_some_and(|b| b == blob) {
            return;
        }
        self.blobs.insert(key, blob.to_vec());
        let mut body = Vec::with_capacity(16 + blob.len());
        body.extend_from_slice(&key.0.to_le_bytes());
        body.extend_from_slice(&key.1.to_le_bytes());
        body.extend_from_slice(blob);
        self.append(RECORD_BLOB, &body);
    }

    /// Appends one framed record; I/O failures are counted, never raised —
    /// losing cache durability must not kill the search writing through.
    fn append(&mut self, record_type: u8, body: &[u8]) {
        if self.append_errors == u64::MAX {
            return; // unreadable header: never append into a foreign file
        }
        if body.len() > MAX_RECORD_LEN {
            self.append_errors += 1;
            return;
        }
        let mut framed = Vec::with_capacity(9 + body.len());
        framed.push(record_type);
        framed.extend_from_slice(&(body.len() as u32).to_le_bytes());
        framed.extend_from_slice(body);
        framed.extend_from_slice(&record_checksum(record_type, body).to_le_bytes());
        if self.file.write_all(&framed).and_then(|()| self.file.flush()).is_err() {
            self.append_errors += 1;
        }
    }
}

/// Checksum of one record: FNV-1a over the type byte, the little-endian
/// length field and the body, truncated to 32 bits.
fn record_checksum(record_type: u8, body: &[u8]) -> u32 {
    let mut framed = Vec::with_capacity(5 + body.len());
    framed.push(record_type);
    framed.extend_from_slice(&(body.len() as u32).to_le_bytes());
    framed.extend_from_slice(body);
    fnv1a(&framed) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{Op, SampleFn};
    use gcode_nn::agg::AggMode;
    use gcode_nn::pool::PoolMode;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("gcode-cachelog-tests");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join(name);
        let _ = std::fs::remove_file(&path);
        path
    }

    fn metrics(seed: f64) -> Metrics {
        Metrics { accuracy: 0.5 + seed, latency_s: 0.01 * seed, energy_j: 0.2 * seed }
    }

    #[test]
    fn round_trips_across_processes() {
        let path = tmp("roundtrip.gclg");
        let mut log = CacheLog::open(&path).expect("open");
        assert!(log.is_empty());
        log.put(1, 2, 3, metrics(0.1));
        log.put(4, 5, 6, metrics(0.2));
        log.put_blob((9, 9), b"plan measurements");
        drop(log);

        let warm = CacheLog::open(&path).expect("reopen");
        assert_eq!(warm.len(), 2);
        assert_eq!(warm.get(1, 2, 3), Some(metrics(0.1)));
        assert_eq!(warm.get(4, 5, 6), Some(metrics(0.2)));
        assert_eq!(warm.get_blob((9, 9)), Some(&b"plan measurements"[..]));
        assert_eq!(warm.get(1, 2, 999), None, "objective is part of the key");
        assert_eq!(warm.recovered_bytes(), 0);
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn last_write_wins_on_replay() {
        let path = tmp("lww.gclg");
        let mut log = CacheLog::open(&path).expect("open");
        log.put(1, 2, 3, metrics(0.1));
        log.put(1, 2, 3, metrics(0.9)); // supersedes
        log.put(1, 2, 3, metrics(0.9)); // identical: no file growth
        drop(log);
        let warm = CacheLog::open(&path).expect("reopen");
        assert_eq!(warm.get(1, 2, 3), Some(metrics(0.9)));
        assert_eq!(warm.len(), 1);
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn truncated_tail_loads_valid_prefix() {
        let path = tmp("truncated.gclg");
        let mut log = CacheLog::open(&path).expect("open");
        log.put(1, 2, 3, metrics(0.1));
        log.put(4, 5, 6, metrics(0.2));
        drop(log);
        // Crash mid-append: chop bytes off the last record.
        let raw = std::fs::read(&path).expect("read");
        std::fs::write(&path, &raw[..raw.len() - 7]).expect("truncate");

        let warm = CacheLog::open(&path).expect("reopen");
        assert_eq!(warm.get(1, 2, 3), Some(metrics(0.1)), "valid prefix survives");
        assert_eq!(warm.get(4, 5, 6), None, "damaged record is dropped");
        assert!(warm.recovered_bytes() > 0);
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn bit_flipped_tail_is_contained_and_appends_continue() {
        let path = tmp("bitflip.gclg");
        let mut log = CacheLog::open(&path).expect("open");
        log.put(1, 2, 3, metrics(0.1));
        log.put(4, 5, 6, metrics(0.2));
        drop(log);
        // Flip a bit inside the second record's body.
        let mut raw = std::fs::read(&path).expect("read");
        let n = raw.len();
        raw[n - 20] ^= 0x40;
        std::fs::write(&path, &raw).expect("corrupt");

        let mut warm = CacheLog::open(&path).expect("reopen");
        assert_eq!(warm.get(1, 2, 3), Some(metrics(0.1)));
        assert_eq!(warm.get(4, 5, 6), None, "checksum catches the flip");
        assert!(warm.recovered_bytes() > 0);
        // The clipped log accepts and persists fresh appends.
        warm.put(7, 8, 9, metrics(0.3));
        drop(warm);
        let again = CacheLog::open(&path).expect("reopen again");
        assert_eq!(again.get(7, 8, 9), Some(metrics(0.3)));
        assert_eq!(again.recovered_bytes(), 0);
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn foreign_file_is_never_appended_into() {
        let path = tmp("foreign.gclg");
        std::fs::write(&path, b"definitely not a cache log").expect("write");
        let mut log = CacheLog::open(&path).expect("open");
        assert!(log.is_empty());
        log.put(1, 2, 3, metrics(0.1));
        assert_eq!(log.get(1, 2, 3), Some(metrics(0.1)), "in-memory cache still works");
        drop(log);
        assert_eq!(
            std::fs::read(&path).expect("read"),
            b"definitely not a cache log",
            "the foreign file is untouched"
        );
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn keys_are_stable_and_discriminating() {
        let a = Architecture::new(vec![
            Op::Sample(SampleFn::Knn { k: 20 }),
            Op::Aggregate(AggMode::Max),
            Op::GlobalPool(PoolMode::Max),
        ]);
        let b = Architecture::new(vec![
            Op::Sample(SampleFn::Knn { k: 10 }),
            Op::Aggregate(AggMode::Max),
            Op::GlobalPool(PoolMode::Max),
        ]);
        assert_eq!(arch_key(&a), arch_key(&a), "same architecture, same key");
        assert_ne!(arch_key(&a), arch_key(&b));
        assert_ne!(tag_key("sim|seed4"), tag_key("sim|seed5"));
        let o1 = Objective::new(0.1, 0.5, 3.0);
        let o2 = Objective::new(0.2, 0.5, 3.0);
        assert_eq!(objective_key(&o1), objective_key(&o1));
        assert_ne!(objective_key(&o1), objective_key(&o2));
    }
}
