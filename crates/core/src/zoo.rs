//! GNN architecture zoo and the runtime dispatcher's selection policy.
//!
//! "GCoDE maintains a set of optimal GNN co-inference architectures (low
//! energy consumption, low latency, high accuracy, etc.) in an architecture
//! zoo... GCoDE dynamically adapts execution architectures via its runtime
//! dispatcher to meet the fluctuating latency and power consumption
//! constraints of the device" (Sec. 3.6).

use crate::search::ScoredArch;
use serde::{Deserialize, Serialize};

/// Runtime requirement handed to the dispatcher when conditions change.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RuntimeConstraint {
    /// Maximum tolerable latency in seconds (`None` = unconstrained).
    pub max_latency_s: Option<f64>,
    /// Maximum tolerable device energy per inference in joules.
    pub max_energy_j: Option<f64>,
}

impl RuntimeConstraint {
    /// No constraints: dispatcher picks the most accurate entry.
    pub fn none() -> Self {
        Self { max_latency_s: None, max_energy_j: None }
    }

    /// Latency-only constraint.
    pub fn latency(max_latency_s: f64) -> Self {
        Self { max_latency_s: Some(max_latency_s), max_energy_j: None }
    }

    /// Energy-only constraint.
    pub fn energy(max_energy_j: f64) -> Self {
        Self { max_latency_s: None, max_energy_j: Some(max_energy_j) }
    }

    fn admits(&self, entry: &ScoredArch) -> bool {
        self.max_latency_s.is_none_or(|c| entry.latency_s <= c)
            && self.max_energy_j.is_none_or(|c| entry.energy_j <= c)
    }
}

/// A persistent collection of searched architectures with their metrics.
///
/// # Example
///
/// ```
/// use gcode_core::zoo::{ArchitectureZoo, RuntimeConstraint};
/// let zoo = ArchitectureZoo::new(vec![]);
/// assert!(zoo.dispatch(RuntimeConstraint::none()).is_none());
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ArchitectureZoo {
    entries: Vec<ScoredArch>,
}

impl ArchitectureZoo {
    /// Builds a zoo from search results (typically `SearchResult::zoo`).
    pub fn new(entries: Vec<ScoredArch>) -> Self {
        let mut zoo = Self { entries };
        zoo.entries.sort_by(|a, b| b.score.total_cmp(&a.score));
        zoo
    }

    /// All entries, best score first.
    pub fn entries(&self) -> &[ScoredArch] {
        &self.entries
    }

    /// Number of stored architectures.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the zoo is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Adds an entry, keeping the ordering invariant.
    pub fn insert(&mut self, entry: ScoredArch) {
        self.entries.push(entry);
        self.entries.sort_by(|a, b| b.score.total_cmp(&a.score));
    }

    /// Runtime dispatch: the most *accurate* entry satisfying `constraint`,
    /// falling back to the lowest-latency entry when nothing qualifies
    /// (degraded mode beats refusing to serve).
    pub fn dispatch(&self, constraint: RuntimeConstraint) -> Option<&ScoredArch> {
        let qualified = self
            .entries
            .iter()
            .filter(|e| constraint.admits(e))
            .max_by(|a, b| a.accuracy.total_cmp(&b.accuracy));
        qualified.or_else(|| self.entries.iter().min_by(|a, b| a.latency_s.total_cmp(&b.latency_s)))
    }

    /// Serializes the zoo to JSON (deployment artifact).
    ///
    /// # Errors
    ///
    /// Returns any `serde_json` serialization error.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Restores a zoo from [`ArchitectureZoo::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns any `serde_json` deserialization error.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::Architecture;
    use crate::op::Op;
    use gcode_nn::pool::PoolMode;

    fn entry(score: f64, accuracy: f64, latency_s: f64, energy_j: f64, dim: usize) -> ScoredArch {
        ScoredArch {
            arch: Architecture::new(vec![Op::Combine { dim }, Op::GlobalPool(PoolMode::Sum)]),
            score,
            accuracy,
            latency_s,
            energy_j,
        }
    }

    fn zoo() -> ArchitectureZoo {
        ArchitectureZoo::new(vec![
            entry(0.8, 0.93, 0.100, 1.0, 128), // accurate but slow
            entry(0.7, 0.91, 0.030, 0.4, 64),  // balanced
            entry(0.6, 0.89, 0.010, 0.1, 16),  // fast & frugal
        ])
    }

    #[test]
    fn unconstrained_dispatch_prefers_accuracy() {
        let z = zoo();
        let pick = z.dispatch(RuntimeConstraint::none()).expect("non-empty");
        assert_eq!(pick.accuracy, 0.93);
    }

    #[test]
    fn latency_constraint_filters() {
        let z = zoo();
        let pick = z.dispatch(RuntimeConstraint::latency(0.05)).expect("non-empty");
        assert_eq!(pick.accuracy, 0.91);
        let pick = z.dispatch(RuntimeConstraint::latency(0.02)).expect("non-empty");
        assert_eq!(pick.accuracy, 0.89);
    }

    #[test]
    fn energy_constraint_filters() {
        let z = zoo();
        let pick = z.dispatch(RuntimeConstraint::energy(0.2)).expect("non-empty");
        assert_eq!(pick.accuracy, 0.89);
    }

    #[test]
    fn impossible_constraint_falls_back_to_fastest() {
        let z = zoo();
        let pick = z.dispatch(RuntimeConstraint::latency(1e-6)).expect("fallback");
        assert_eq!(pick.latency_s, 0.010);
    }

    #[test]
    fn empty_zoo_dispatches_none() {
        let z = ArchitectureZoo::default();
        assert!(z.dispatch(RuntimeConstraint::none()).is_none());
        assert!(z.is_empty());
    }

    #[test]
    fn insert_keeps_order() {
        let mut z = zoo();
        z.insert(entry(0.95, 0.94, 0.2, 2.0, 128));
        assert_eq!(z.entries()[0].score, 0.95);
        assert_eq!(z.len(), 4);
    }

    #[test]
    fn json_round_trip() {
        let z = zoo();
        let json = z.to_json().expect("serialize");
        let back = ArchitectureZoo::from_json(&json).expect("deserialize");
        assert_eq!(back.len(), z.len());
        assert_eq!(back.entries()[0].accuracy, z.entries()[0].accuracy);
    }
}
