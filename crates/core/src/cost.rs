//! Shape tracing and per-operation cost models.
//!
//! Walking an architecture while tracking `(nodes, dim, graph degree,
//! pooled)` is the common machinery behind the latency LUT, the cost
//! estimator, the energy estimator, the transfer-size analysis of Fig. 2
//! and the co-inference simulator.

use crate::arch::{Architecture, WorkloadProfile};
use crate::op::{Op, Placement};
use gcode_graph::knn::knn_flops;
use gcode_hardware::OpCost;
use serde::{Deserialize, Serialize};

/// Tensor/graph shape flowing between operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShapeState {
    /// Current node count (1 after pooling).
    pub nodes: usize,
    /// Current feature width.
    pub dim: usize,
    /// Mean degree of the live graph (0 if none).
    pub degree: usize,
    /// Whether a graph is currently materialized.
    pub has_graph: bool,
    /// Whether global pooling has collapsed the nodes.
    pub pooled: bool,
    /// Whether features are per-edge (set by `EdgeCombine`, cleared by
    /// `Aggregate`).
    pub edge_features: bool,
}

impl ShapeState {
    /// Initial state for a workload.
    pub fn initial(profile: &WorkloadProfile) -> Self {
        Self {
            nodes: profile.num_nodes,
            dim: profile.in_dim,
            degree: if profile.provides_graph { profile.provided_degree } else { 0 },
            has_graph: profile.provides_graph,
            pooled: false,
            edge_features: false,
        }
    }

    /// Bytes of the feature tensor at this point (f32 payload). Edge
    /// features count `nodes × degree` rows.
    pub fn feature_bytes(&self) -> usize {
        let rows = if self.edge_features { self.nodes * self.degree.max(1) } else { self.nodes };
        rows * self.dim * 4
    }

    /// Bytes needed to ship the live graph structure (CSR u32s), 0 if no
    /// graph is materialized. Fig. 2: a preceding KNN inflates the transfer
    /// size of a split placed after it.
    pub fn graph_bytes(&self) -> usize {
        if self.has_graph && !self.pooled {
            4 * (self.nodes * self.degree + self.nodes + 1)
        } else {
            0
        }
    }

    /// Total bytes a `Communicate` at this point must move.
    pub fn transfer_bytes(&self) -> usize {
        self.feature_bytes() + self.graph_bytes()
    }
}

/// One step of a shape trace: the op, its processor-independent cost, the
/// state *after* the op, and where it runs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TracedOp {
    /// The operation.
    pub op: Op,
    /// Compute cost (zero for `Communicate`/`Identity`).
    pub cost: OpCost,
    /// Bytes moved if this op is a `Communicate`, else 0.
    pub transfer_bytes: usize,
    /// Shape after the op.
    pub state_after: ShapeState,
    /// Mapped side.
    pub placement: Placement,
}

/// Computes the processor-independent cost of `op` applied at `state`, and
/// the successor state.
///
/// Cost formulas (n = nodes, d = dim, k = degree, m = out dim):
///
/// * `Sample(knn)`: selection-bound, `n²·2d` FLOPs over `n²·8` bytes.
/// * `Sample(random)`: negligible (index generation only).
/// * `Aggregate`: gather-bound, `n·k·d` FLOPs over `3·n·k·d·4` bytes.
/// * `Combine`: dense, `2·n·d·m` FLOPs (per-edge rows if edge features).
/// * `EdgeCombine`: dense, `2·(n·k)·(2d)·m` FLOPs — DGCNN's edge MLP.
/// * `GlobalPool`: streaming `n·d`.
pub fn apply_op(op: &Op, state: ShapeState) -> (OpCost, ShapeState) {
    let n = state.nodes as u64;
    let d = state.dim as u64;
    let k = state.degree.max(1) as u64;
    let mut next = state;
    let cost = match *op {
        Op::Sample(f) => {
            next.has_graph = true;
            next.degree = f.k();
            next.edge_features = false;
            match f {
                crate::op::SampleFn::Knn { .. } => {
                    OpCost::selection(knn_flops(state.nodes, state.dim), (n * n * 8).max(1))
                }
                crate::op::SampleFn::Random { k } => {
                    OpCost::regular(n * k as u64, n * k as u64 * 4)
                }
            }
        }
        Op::Aggregate(_) => {
            // Aggregation gathers k neighbor rows per node whether the
            // features live on nodes or edges.
            let rows = n * k;
            next.edge_features = false;
            OpCost::gather(rows * d, 3 * rows * d * 4)
        }
        Op::Combine { dim } => {
            let rows = if state.edge_features { n * k } else { n };
            next.dim = dim;
            OpCost::regular(
                2 * rows * d * dim as u64,
                4 * (rows * d + rows * dim as u64 + d * dim as u64),
            )
        }
        Op::EdgeCombine { dim } => {
            next.dim = dim;
            next.edge_features = true;
            OpCost::regular(
                2 * (n * k) * (2 * d) * dim as u64,
                4 * (n * k * 2 * d + n * k * dim as u64),
            )
        }
        Op::GlobalPool(_) => {
            let rows = if state.edge_features { n * k } else { n };
            next.nodes = 1;
            next.pooled = true;
            next.has_graph = false;
            next.degree = 0;
            next.edge_features = false;
            OpCost::regular(rows * d, rows * d * 4)
        }
        Op::Communicate | Op::Identity => OpCost::ZERO,
    };
    (cost, next)
}

/// Traces a whole architecture over a workload, attributing each op to its
/// mapped side and recording transfer sizes at every `Communicate`.
pub fn trace(arch: &Architecture, profile: &WorkloadProfile) -> Vec<TracedOp> {
    let placements = arch.placements();
    let mut state = ShapeState::initial(profile);
    let mut out = Vec::with_capacity(arch.len());
    for (op, &placement) in arch.ops().iter().zip(&placements) {
        let transfer_bytes =
            if op.kind() == crate::op::OpKind::Communicate { state.transfer_bytes() } else { 0 };
        let (cost, next) = apply_op(op, state);
        state = next;
        out.push(TracedOp { op: *op, cost, transfer_bytes, state_after: state, placement });
    }
    out
}

/// Final shape after the whole sequence (useful for classifier sizing and
/// the output-return transfer).
pub fn final_state(arch: &Architecture, profile: &WorkloadProfile) -> ShapeState {
    let mut state = ShapeState::initial(profile);
    for op in arch.ops() {
        state = apply_op(op, state).1;
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::SampleFn;
    use gcode_nn::agg::AggMode;
    use gcode_nn::pool::PoolMode;

    fn pc() -> WorkloadProfile {
        WorkloadProfile::modelnet40()
    }

    #[test]
    fn initial_state_matches_profile() {
        let s = ShapeState::initial(&pc());
        assert_eq!(s.nodes, 1024);
        assert_eq!(s.dim, 3);
        assert!(!s.has_graph);
        let t = ShapeState::initial(&WorkloadProfile::mr());
        assert!(t.has_graph);
        assert_eq!(t.degree, 4);
    }

    #[test]
    fn combine_changes_dim() {
        let s = ShapeState::initial(&pc());
        let (_, next) = apply_op(&Op::Combine { dim: 64 }, s);
        assert_eq!(next.dim, 64);
        assert_eq!(next.nodes, 1024);
    }

    #[test]
    fn pool_collapses_nodes_and_graph() {
        let s = ShapeState::initial(&WorkloadProfile::mr());
        let (_, next) = apply_op(&Op::GlobalPool(PoolMode::Sum), s);
        assert_eq!(next.nodes, 1);
        assert!(next.pooled);
        assert!(!next.has_graph);
        assert_eq!(next.graph_bytes(), 0);
    }

    #[test]
    fn sample_sets_degree() {
        let s = ShapeState::initial(&pc());
        let (cost, next) = apply_op(&Op::Sample(SampleFn::Knn { k: 20 }), s);
        assert!(next.has_graph);
        assert_eq!(next.degree, 20);
        assert_eq!(cost.pattern, gcode_hardware::AccessPattern::Selection);
    }

    #[test]
    fn knn_transfer_inflation_matches_fig2() {
        // Splitting right after a KNN must move more bytes than before it.
        let before = ShapeState::initial(&pc());
        let (_, after) = apply_op(&Op::Sample(SampleFn::Knn { k: 20 }), before);
        assert!(after.transfer_bytes() > before.transfer_bytes());
    }

    #[test]
    fn pooling_shrinks_transfer_markedly() {
        // Fig. 2: Pooling reduces intermediate data sharply.
        let mut s = ShapeState::initial(&pc());
        s = apply_op(&Op::Combine { dim: 64 }, s).1;
        let pre_pool = s.transfer_bytes();
        let post_pool = apply_op(&Op::GlobalPool(PoolMode::Max), s).1.transfer_bytes();
        assert!(post_pool * 100 < pre_pool);
    }

    #[test]
    fn wider_combine_increases_transfer() {
        let s = ShapeState::initial(&pc());
        let narrow = apply_op(&Op::Combine { dim: 16 }, s).1.transfer_bytes();
        let wide = apply_op(&Op::Combine { dim: 128 }, s).1.transfer_bytes();
        assert!(wide > narrow);
    }

    #[test]
    fn edge_combine_produces_edge_features() {
        let mut s = ShapeState::initial(&pc());
        s = apply_op(&Op::Sample(SampleFn::Knn { k: 20 }), s).1;
        let (cost, next) = apply_op(&Op::EdgeCombine { dim: 64 }, s);
        assert!(next.edge_features);
        // Edge MLP is ~k× more work than the node MLP at equal dims.
        let (node_cost, _) = apply_op(&Op::Combine { dim: 64 }, s);
        assert!(cost.flops > 10 * node_cost.flops);
        // Aggregate clears the edge-feature flag.
        let (_, after_agg) = apply_op(&Op::Aggregate(AggMode::Max), next);
        assert!(!after_agg.edge_features);
    }

    #[test]
    fn trace_attributes_transfer_to_communicates_only() {
        let arch = Architecture::new(vec![
            Op::Sample(SampleFn::Knn { k: 20 }),
            Op::Communicate,
            Op::Aggregate(AggMode::Max),
            Op::GlobalPool(PoolMode::Sum),
        ]);
        let t = trace(&arch, &pc());
        assert_eq!(t.len(), 4);
        assert_eq!(t[0].transfer_bytes, 0);
        assert!(t[1].transfer_bytes > 0);
        assert_eq!(t[2].transfer_bytes, 0);
        assert_eq!(t[1].placement, Placement::Device);
        assert_eq!(t[2].placement, Placement::Edge);
    }

    #[test]
    fn final_state_reaches_pooled() {
        let arch = Architecture::new(vec![
            Op::Sample(SampleFn::Knn { k: 10 }),
            Op::Aggregate(AggMode::Mean),
            Op::Combine { dim: 32 },
            Op::GlobalPool(PoolMode::Mean),
        ]);
        let s = final_state(&arch, &pc());
        assert!(s.pooled);
        assert_eq!(s.dim, 32);
        assert_eq!(s.nodes, 1);
    }

    #[test]
    fn identity_and_communicate_are_compute_free() {
        let s = ShapeState::initial(&pc());
        assert_eq!(apply_op(&Op::Identity, s).0, OpCost::ZERO);
        assert_eq!(apply_op(&Op::Communicate, s).0, OpCost::ZERO);
    }
}
