//! Operations of the unified co-inference design space (Fig. 6).
//!
//! The decisive idea of the paper lives here: [`Op::Communicate`] is an
//! ordinary architecture operation. Where it appears in the sequence decides
//! the device/edge mapping of everything after it, so searching over
//! architectures *is* searching over mappings.

use gcode_nn::agg::AggMode;
use gcode_nn::pool::PoolMode;
use serde::{Deserialize, Serialize};

/// Function setting of the `Sample` operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SampleFn {
    /// k-nearest-neighbor graph in current feature space.
    Knn {
        /// Neighbors per node.
        k: usize,
    },
    /// k uniformly random neighbors per node.
    Random {
        /// Neighbors per node.
        k: usize,
    },
}

impl SampleFn {
    /// Neighbors per node, independent of sampling flavor.
    pub fn k(&self) -> usize {
        match *self {
            SampleFn::Knn { k } | SampleFn::Random { k } => k,
        }
    }
}

/// One operation of a co-inference architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Op {
    /// Build/rebuild the neighbor graph.
    Sample(SampleFn),
    /// Aggregate neighbor features (add/mean/max).
    Aggregate(AggMode),
    /// Transfer current intermediate data between device and edge. The
    /// paper's "specialized GNN operation" — zero compute, pure transfer.
    Communicate,
    /// Per-node linear + ReLU to `dim` features (16/32/64/128).
    Combine {
        /// Output feature width.
        dim: usize,
    },
    /// Per-*edge* MLP to `dim` features — DGCNN's EdgeConv transform.
    /// Not part of the searchable space (GCoDE's `Combine` options are
    /// node MLPs) but needed to model the DGCNN/BRANCHY baselines whose
    /// breakdowns Figs. 2–4 profile.
    EdgeCombine {
        /// Output feature width.
        dim: usize,
    },
    /// Global readout (sum/mean/max) collapsing nodes to one vector.
    GlobalPool(PoolMode),
    /// Pass-through.
    Identity,
}

/// Coarse operation kind, used for one-hot predictor features and for
/// validity rules that only care about the class of an op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// `Sample`.
    Sample,
    /// `Aggregate`.
    Aggregate,
    /// `Communicate`.
    Communicate,
    /// `Combine` / `EdgeCombine`.
    Combine,
    /// `GlobalPool`.
    GlobalPool,
    /// `Identity`.
    Identity,
}

impl Op {
    /// The coarse kind of this op.
    pub fn kind(&self) -> OpKind {
        match self {
            Op::Sample(_) => OpKind::Sample,
            Op::Aggregate(_) => OpKind::Aggregate,
            Op::Communicate => OpKind::Communicate,
            Op::Combine { .. } | Op::EdgeCombine { .. } => OpKind::Combine,
            Op::GlobalPool(_) => OpKind::GlobalPool,
            Op::Identity => OpKind::Identity,
        }
    }

    /// Whether this op requires node-level (pre-pooling) features.
    pub fn needs_nodes(&self) -> bool {
        matches!(
            self,
            Op::Sample(_) | Op::Aggregate(_) | Op::EdgeCombine { .. } | Op::GlobalPool(_)
        )
    }
}

impl std::fmt::Display for Op {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Op::Sample(SampleFn::Knn { k }) => write!(f, "Sample(knn,k={k})"),
            Op::Sample(SampleFn::Random { k }) => write!(f, "Sample(rand,k={k})"),
            Op::Aggregate(m) => write!(f, "Aggregate({m})"),
            Op::Communicate => write!(f, "Communicate"),
            Op::Combine { dim } => write!(f, "Combine({dim})"),
            Op::EdgeCombine { dim } => write!(f, "EdgeCombine({dim})"),
            Op::GlobalPool(m) => write!(f, "GlobalPool({m})"),
            Op::Identity => write!(f, "Identity"),
        }
    }
}

/// Which processor executes an op, derived from the `Communicate` positions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Placement {
    /// Runs on the device.
    Device,
    /// Runs on the edge server.
    Edge,
}

impl Placement {
    /// The other side.
    pub fn flipped(self) -> Placement {
        match self {
            Placement::Device => Placement::Edge,
            Placement::Edge => Placement::Device,
        }
    }
}

impl std::fmt::Display for Placement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Placement::Device => write!(f, "device"),
            Placement::Edge => write!(f, "edge"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_cover_all_ops() {
        assert_eq!(Op::Sample(SampleFn::Knn { k: 20 }).kind(), OpKind::Sample);
        assert_eq!(Op::Aggregate(AggMode::Max).kind(), OpKind::Aggregate);
        assert_eq!(Op::Communicate.kind(), OpKind::Communicate);
        assert_eq!(Op::Combine { dim: 32 }.kind(), OpKind::Combine);
        assert_eq!(Op::EdgeCombine { dim: 64 }.kind(), OpKind::Combine);
        assert_eq!(Op::GlobalPool(PoolMode::Sum).kind(), OpKind::GlobalPool);
        assert_eq!(Op::Identity.kind(), OpKind::Identity);
    }

    #[test]
    fn needs_nodes_classification() {
        assert!(Op::Sample(SampleFn::Random { k: 5 }).needs_nodes());
        assert!(Op::GlobalPool(PoolMode::Max).needs_nodes());
        assert!(!Op::Combine { dim: 16 }.needs_nodes());
        assert!(!Op::Communicate.needs_nodes());
        assert!(!Op::Identity.needs_nodes());
    }

    #[test]
    fn placement_flips() {
        assert_eq!(Placement::Device.flipped(), Placement::Edge);
        assert_eq!(Placement::Edge.flipped(), Placement::Device);
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(Op::Combine { dim: 64 }.to_string(), "Combine(64)");
        assert_eq!(Op::Sample(SampleFn::Knn { k: 20 }).to_string(), "Sample(knn,k=20)");
    }

    #[test]
    fn sample_fn_k() {
        assert_eq!(SampleFn::Knn { k: 9 }.k(), 9);
        assert_eq!(SampleFn::Random { k: 4 }.k(), 4);
    }
}
