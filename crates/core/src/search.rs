//! Constraint-based random search (Alg. 1) expressed as a
//! [`SearchStrategy`], plus the result types shared by every strategy.

use crate::arch::Architecture;
use crate::eval::{Evaluator, Objective, SearchSession, SearchStrategy};
use crate::space::DesignSpace;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Search hyper-parameters (Alg. 1 inputs). The objective — `λ` and the
/// performance constraints — lives separately in
/// [`crate::eval::Objective`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SearchConfig {
    /// Stage-1 iterations `T` (paper: 2000).
    pub iterations: usize,
    /// Stage-2 tuning iterations `T_f` (paper: 10).
    pub tuning_iterations: usize,
    /// RNG seed.
    pub seed: u64,
    /// How many top candidates to keep for the architecture zoo.
    pub zoo_size: usize,
    /// Accuracy loss tolerated by stage-2 scale-down (fraction, e.g. 0.003).
    pub tuning_tolerance: f64,
    /// Candidates per batched evaluation call. Batching preserves the
    /// trial order (and therefore seed-for-seed results) while letting
    /// evaluators amortize work across candidates.
    pub batch_size: usize,
}

impl Default for SearchConfig {
    fn default() -> Self {
        Self {
            iterations: 2000,
            tuning_iterations: 10,
            seed: 0,
            zoo_size: 8,
            tuning_tolerance: 0.003,
            batch_size: 16,
        }
    }
}

/// A fully evaluated candidate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScoredArch {
    /// The architecture.
    pub arch: Architecture,
    /// Combined score `acc − λ(P̂_sys + Ê_dev)` (−1 for constraint misses).
    pub score: f64,
    /// Validation accuracy in `[0, 1]`.
    pub accuracy: f64,
    /// Estimated/simulated system latency in seconds.
    pub latency_s: f64,
    /// Estimated on-device energy in joules.
    pub energy_j: f64,
}

/// Outcome of a search run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchResult {
    /// Top candidates by score, best first — the architecture-zoo payload.
    pub zoo: Vec<ScoredArch>,
    /// Running best score after each trial (Fig. 10a series).
    pub history: Vec<f64>,
    /// Trials that failed the performance constraints.
    pub constraint_misses: usize,
    /// Total resampling draws spent inside the validity check.
    pub validity_draws: usize,
}

impl SearchResult {
    /// Best candidate, if any trial passed the constraints.
    pub fn best(&self) -> Option<&ScoredArch> {
        self.zoo.first()
    }

    /// Candidate with the lowest latency in the zoo.
    pub fn best_latency(&self) -> Option<&ScoredArch> {
        self.zoo.iter().min_by(|a, b| a.latency_s.total_cmp(&b.latency_s))
    }

    /// Candidate with the lowest device energy in the zoo.
    pub fn best_energy(&self) -> Option<&ScoredArch> {
        self.zoo.iter().min_by(|a, b| a.energy_j.total_cmp(&b.energy_j))
    }
}

/// The two-stage constraint-based random search of Alg. 1.
///
/// Stage 1 samples valid operation sets, rejects constraint violators, and
/// keeps a zoo of top scorers; candidates are evaluated in batches through
/// the session's memo cache without changing the trial order. Stage 2
/// tries function scale-downs on the best candidate, adopting any variant
/// that stays within `tuning_tolerance` of its accuracy while improving
/// latency or energy.
#[derive(Debug, Clone, Copy)]
pub struct RandomSearch {
    /// Hyper-parameters.
    pub cfg: SearchConfig,
}

impl RandomSearch {
    /// Builds the strategy from its hyper-parameters.
    pub fn new(cfg: SearchConfig) -> Self {
        Self { cfg }
    }
}

impl SearchStrategy for RandomSearch {
    fn search(&self, session: &mut SearchSession<'_>) -> SearchResult {
        let cfg = &self.cfg;
        let objective = session.objective();
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let mut zoo: Vec<ScoredArch> = Vec::new();
        let mut history = Vec::with_capacity(cfg.iterations);
        let mut best_so_far = f64::NEG_INFINITY;
        let mut constraint_misses = 0usize;
        let mut validity_draws = 0usize;

        // Stage 1: operation search, in evaluation batches.
        let mut remaining = cfg.iterations;
        while remaining > 0 {
            let batch_len = remaining.min(cfg.batch_size.max(1));
            let mut batch = Vec::with_capacity(batch_len);
            for _ in 0..batch_len {
                let (arch, draws) = session.space().sample_valid(&mut rng, 100_000);
                validity_draws += draws;
                batch.push(arch);
            }
            let metrics = session.evaluate_batch(&batch);
            for (arch, m) in batch.into_iter().zip(metrics) {
                if !objective.feasible(&m) {
                    constraint_misses += 1;
                }
                let scored = objective.scored(arch, m);
                best_so_far = best_so_far.max(scored.score);
                history.push(best_so_far);
                if scored.score > -1.0 {
                    insert_into_zoo(&mut zoo, scored, cfg.zoo_size);
                }
            }
            remaining -= batch_len;
        }

        // Stage 2: function scale-down tuning on the best candidate. Each
        // acceptance feeds the next proposal, so this stays sequential.
        if let Some(best) = zoo.first().cloned() {
            let mut current = best;
            for _ in 0..cfg.tuning_iterations {
                let Some(candidate) = session.space().scale_down(&current.arch, &mut rng) else {
                    break;
                };
                if candidate.validate(&session.space().profile).is_err() {
                    continue;
                }
                let m = session.evaluate(&candidate);
                if !objective.feasible(&m) {
                    continue;
                }
                let improves = m.latency_s < current.latency_s || m.energy_j < current.energy_j;
                if improves && m.accuracy + cfg.tuning_tolerance >= current.accuracy {
                    current = objective.scored(candidate, m);
                }
            }
            insert_into_zoo(&mut zoo, current, cfg.zoo_size);
        }

        SearchResult { zoo, history, constraint_misses, validity_draws }
    }
}

/// Convenience wrapper: runs [`RandomSearch`] through a fresh
/// [`SearchSession`] and returns the result.
pub fn random_search(
    space: &DesignSpace,
    cfg: &SearchConfig,
    objective: &Objective,
    evaluator: &dyn Evaluator,
) -> SearchResult {
    SearchSession::new(space, evaluator).with_objective(*objective).run(&RandomSearch::new(*cfg))
}

pub(crate) fn insert_into_zoo(zoo: &mut Vec<ScoredArch>, candidate: ScoredArch, cap: usize) {
    if zoo.iter().any(|z| z.arch == candidate.arch && z.score >= candidate.score) {
        return;
    }
    zoo.retain(|z| z.arch != candidate.arch);
    zoo.push(candidate);
    zoo.sort_by(|a, b| b.score.total_cmp(&a.score));
    zoo.truncate(cap);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::WorkloadProfile;
    use crate::eval::backend::AnalyticBackend;
    use gcode_hardware::SystemConfig;

    fn setup() -> (DesignSpace, SearchConfig, Objective) {
        let space = DesignSpace::paper(WorkloadProfile::modelnet40());
        let cfg = SearchConfig {
            iterations: 150,
            tuning_iterations: 5,
            seed: 11,
            ..SearchConfig::default()
        };
        let objective = Objective {
            latency_constraint_s: 0.5,
            energy_constraint_j: 3.0,
            ..Objective::default()
        };
        (space, cfg, objective)
    }

    fn evaluator(sys: SystemConfig) -> AnalyticBackend<impl Fn(&Architecture) -> f64 + Sync> {
        AnalyticBackend {
            profile: WorkloadProfile::modelnet40(),
            sys,
            // Accuracy proxy: mildly rewards more Combine capacity.
            accuracy_fn: |a: &Architecture| {
                let cap: usize = a
                    .ops()
                    .iter()
                    .map(|o| match o {
                        crate::op::Op::Combine { dim } => *dim,
                        crate::op::Op::Aggregate(_) => 8,
                        _ => 0,
                    })
                    .sum();
                0.85 + 0.10 * (1.0 - (-(cap as f64) / 64.0).exp())
            },
        }
    }

    #[test]
    fn search_finds_constraint_satisfying_architectures() {
        let (space, cfg, objective) = setup();
        let eval = evaluator(SystemConfig::tx2_to_i7(40.0));
        let result = random_search(&space, &cfg, &objective, &eval);
        let best = result.best().expect("should find candidates");
        assert!(best.latency_s < objective.latency_constraint_s);
        assert!(best.energy_j < objective.energy_constraint_j);
        assert!(best.score > -1.0);
        assert!(best.arch.validate(&space.profile).is_ok());
    }

    #[test]
    fn history_is_monotone_nondecreasing() {
        let (space, cfg, objective) = setup();
        let eval = evaluator(SystemConfig::tx2_to_1060(40.0));
        let result = random_search(&space, &cfg, &objective, &eval);
        assert_eq!(result.history.len(), cfg.iterations);
        for w in result.history.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn zoo_sorted_and_bounded() {
        let (space, cfg, objective) = setup();
        let eval = evaluator(SystemConfig::pi_to_1060(40.0));
        let result = random_search(&space, &cfg, &objective, &eval);
        assert!(result.zoo.len() <= cfg.zoo_size);
        for w in result.zoo.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
        // No duplicate architectures in the zoo.
        for i in 0..result.zoo.len() {
            for j in i + 1..result.zoo.len() {
                assert_ne!(result.zoo[i].arch, result.zoo[j].arch);
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let (space, cfg, objective) = setup();
        let e1 = evaluator(SystemConfig::tx2_to_i7(40.0));
        let e2 = evaluator(SystemConfig::tx2_to_i7(40.0));
        let r1 = random_search(&space, &cfg, &objective, &e1);
        let r2 = random_search(&space, &cfg, &objective, &e2);
        assert_eq!(r1.history, r2.history);
        assert_eq!(r1.best().map(|b| b.arch.clone()), r2.best().map(|b| b.arch.clone()));
    }

    #[test]
    fn batch_size_does_not_change_results() {
        // Batching is an evaluation-transport detail: the sampled trial
        // sequence, history and zoo must be identical for any batch size.
        let (space, cfg, objective) = setup();
        let eval = evaluator(SystemConfig::tx2_to_i7(40.0));
        let baseline =
            random_search(&space, &SearchConfig { batch_size: 1, ..cfg }, &objective, &eval);
        for batch_size in [2usize, 7, 64, 1000] {
            let run = random_search(&space, &SearchConfig { batch_size, ..cfg }, &objective, &eval);
            assert_eq!(run.history, baseline.history, "batch_size {batch_size}");
            assert_eq!(run.best().map(|b| b.arch.clone()), baseline.best().map(|b| b.arch.clone()));
        }
    }

    #[test]
    fn tight_constraints_produce_misses() {
        let (space, cfg, mut objective) = setup();
        objective.latency_constraint_s = 1e-6; // impossible
        let eval = evaluator(SystemConfig::tx2_to_i7(40.0));
        let result = random_search(&space, &cfg, &objective, &eval);
        assert_eq!(result.constraint_misses, cfg.iterations);
        assert!(result.zoo.is_empty());
        assert!(result.history.iter().all(|&s| s == -1.0));
    }

    #[test]
    fn best_latency_and_energy_selectors() {
        let (space, cfg, objective) = setup();
        let eval = evaluator(SystemConfig::tx2_to_i7(40.0));
        let result = random_search(&space, &cfg, &objective, &eval);
        let bl = result.best_latency().expect("non-empty zoo");
        for z in &result.zoo {
            assert!(bl.latency_s <= z.latency_s);
        }
        let be = result.best_energy().expect("non-empty zoo");
        for z in &result.zoo {
            assert!(be.energy_j <= z.energy_j);
        }
    }

    #[test]
    fn lambda_tradeoff_moves_selection_toward_speed() {
        let (space, mut cfg, mut objective) = setup();
        cfg.iterations = 300;
        let eval = evaluator(SystemConfig::tx2_to_i7(40.0));
        objective.lambda = 0.01;
        let accurate = random_search(&space, &cfg, &objective, &eval);
        objective.lambda = 1.0;
        let fast = random_search(&space, &cfg, &objective, &eval);
        let (a, f) = (accurate.best().unwrap(), fast.best().unwrap());
        assert!(
            f.latency_s <= a.latency_s,
            "large λ should prefer faster archs: {} vs {}",
            f.latency_s,
            a.latency_s
        );
    }

    #[test]
    fn session_reuse_carries_the_cache_across_runs() {
        let (space, cfg, objective) = setup();
        let eval = evaluator(SystemConfig::tx2_to_i7(40.0));
        let mut session = SearchSession::new(&space, &eval).with_objective(objective);
        let first = session.run(&RandomSearch::new(cfg));
        let after_first = session.cache_stats();
        // A rerun with the same seed resamples the same candidates: every
        // evaluation is served from the memo cache.
        let second = session.run(&RandomSearch::new(cfg));
        let after_second = session.cache_stats();
        assert_eq!(first.history, second.history);
        assert_eq!(after_second.misses, after_first.misses, "rerun must not re-evaluate");
        assert!(after_second.hits > after_first.hits);
    }
}
