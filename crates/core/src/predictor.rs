//! The system performance predictor (Sec. 3.5 / Fig. 7): architecture-graph
//! abstraction, enhanced node features, and a GIN regressor (with the GCN
//! and one-hot ablations of Fig. 10b).

use crate::arch::{Architecture, WorkloadProfile};
use crate::cost::trace;
use crate::op::{OpKind, Placement};
use gcode_graph::CsrGraph;
use gcode_hardware::SystemConfig;
use gcode_nn::gcn::GcnRegressor;
use gcode_nn::gin::GinRegressor;
use gcode_tensor::Matrix;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Node feature construction strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FeatureMode {
    /// One-hot op kind ⊕ z-scored per-op LUT latency on the mapped
    /// processor — the paper's "enhanced" features.
    Enhanced,
    /// One-hot op kind only (HGNAS-style; the ablation's weak variant).
    OneHot,
}

/// Regressor backbone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Backbone {
    /// 3 × GIN(mean) + global sum pooling (the paper's choice).
    Gin,
    /// 3 × GCN + global sum pooling (ablation).
    Gcn,
}

/// Predictor hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PredictorConfig {
    /// Hidden width (paper: 1024; tests use far less).
    pub hidden: usize,
    /// Number of message-passing layers (paper: 3).
    pub layers: usize,
    /// Training epochs (paper: 200).
    pub epochs: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// Feature strategy.
    pub features: FeatureMode,
    /// Backbone choice.
    pub backbone: Backbone,
    /// Init/shuffle seed.
    pub seed: u64,
}

impl Default for PredictorConfig {
    fn default() -> Self {
        Self {
            hidden: 64,
            layers: 3,
            epochs: 120,
            lr: 3e-3,
            features: FeatureMode::Enhanced,
            backbone: Backbone::Gin,
            seed: 0,
        }
    }
}

/// Number of one-hot node-type channels: Input, Output, Global + 6 op kinds.
pub const NODE_TYPE_CHANNELS: usize = 9;

/// Total feature width (one-hot ⊕ latency channel).
pub const FEATURE_DIM: usize = NODE_TYPE_CHANNELS + 1;

/// Z-score parameters for the latency feature channel.
///
/// The paper normalizes the LUT latencies *globally* ("to mitigate the
/// effect of varying operation magnitudes, latency values are normalized
/// using z-score normalization") — the statistics are those of the whole
/// operation-latency LUT, not of one architecture, so absolute magnitude
/// survives and global sum pooling can recover the total latency.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyNorm {
    /// Mean op latency, milliseconds.
    pub mean_ms: f64,
    /// Standard deviation, milliseconds.
    pub std_ms: f64,
}

impl Default for LatencyNorm {
    fn default() -> Self {
        // Ballpark statistics of the paper-scale LUT (ms-scale ops).
        Self { mean_ms: 5.0, std_ms: 15.0 }
    }
}

impl LatencyNorm {
    /// Fits the normalization to a population of per-op latencies (ms).
    pub fn fit(values_ms: &[f64]) -> Self {
        if values_ms.is_empty() {
            return Self::default();
        }
        let n = values_ms.len() as f64;
        let mean = values_ms.iter().sum::<f64>() / n;
        let var = values_ms.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        Self { mean_ms: mean, std_ms: var.sqrt().max(1e-9) }
    }

    /// Normalizes one latency value.
    pub fn apply(&self, ms: f64) -> f64 {
        (ms - self.mean_ms) / self.std_ms
    }
}

fn node_type_index(kind: Option<OpKind>) -> usize {
    match kind {
        None => 0, // set explicitly by caller for Input/Output/Global
        Some(OpKind::Sample) => 3,
        Some(OpKind::Aggregate) => 4,
        Some(OpKind::Communicate) => 5,
        Some(OpKind::Combine) => 6,
        Some(OpKind::GlobalPool) => 7,
        Some(OpKind::Identity) => 8,
    }
}

/// Abstracts an architecture into the predictor's input graph:
/// `Input → op₁ → … → op_L → Output` dataflow edges (both directions so
/// information flows under any aggregation), self-connections, and a global
/// node linked to every other node (Sec. 3.5, "Graph abstraction").
///
/// Returns `(graph, node_features)`; features follow `mode`.
pub fn abstract_architecture(
    arch: &Architecture,
    profile: &WorkloadProfile,
    sys: &SystemConfig,
    mode: FeatureMode,
) -> (CsrGraph, Matrix) {
    abstract_architecture_with_norm(arch, profile, sys, mode, &LatencyNorm::default())
}

/// [`abstract_architecture`] with explicit latency normalization — used by
/// a trained [`LatencyPredictor`], which fits the normalization on its
/// training population.
pub fn abstract_architecture_with_norm(
    arch: &Architecture,
    profile: &WorkloadProfile,
    sys: &SystemConfig,
    mode: FeatureMode,
    norm: &LatencyNorm,
) -> (CsrGraph, Matrix) {
    let l = arch.len();
    let input = l; // node ids: 0..l are ops
    let output = l + 1;
    let global = l + 2;
    let n = l + 3;

    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(4 * n);
    let mut chain: Vec<u32> = Vec::with_capacity(l + 2);
    chain.push(input as u32);
    chain.extend(0..l as u32);
    chain.push(output as u32);
    for w in chain.windows(2) {
        edges.push((w[0], w[1]));
        edges.push((w[1], w[0]));
    }
    for v in 0..n as u32 {
        if v != global as u32 {
            edges.push((global as u32, v));
            edges.push((v, global as u32));
        }
    }
    let graph = CsrGraph::from_edges(n, &edges).with_self_loops();

    // Per-node LUT latency (ms) on the mapped processor.
    let traced = trace(arch, profile);
    let mut latencies = vec![0.0f64; n];
    for (i, t) in traced.iter().enumerate() {
        latencies[i] = if t.op.kind() == OpKind::Communicate {
            sys.link.transfer_time(t.transfer_bytes) * 1e3
        } else {
            let proc = match t.placement {
                Placement::Device => &sys.device,
                Placement::Edge => &sys.edge,
            };
            proc.latency(&t.cost) * 1e3
        };
    }
    let mut feats = Matrix::zeros(n, FEATURE_DIM);
    for i in 0..l {
        feats[(i, node_type_index(Some(arch.ops()[i].kind())))] = 1.0;
        if mode == FeatureMode::Enhanced {
            feats[(i, NODE_TYPE_CHANNELS)] = norm.apply(latencies[i]) as f32;
        }
    }
    feats[(input, 0)] = 1.0;
    feats[(output, 1)] = 1.0;
    feats[(global, 2)] = 1.0;
    (graph, feats)
}

/// A trained latency predictor.
pub struct LatencyPredictor {
    cfg: PredictorConfig,
    /// Workload the predictor was trained for.
    pub profile: WorkloadProfile,
    /// System the predictor was trained for.
    pub sys: SystemConfig,
    norm: LatencyNorm,
    model: Model,
}

#[derive(Serialize, Deserialize)]
enum Model {
    Gin(GinRegressor),
    Gcn(GcnRegressor),
}

/// Serializable snapshot of a trained predictor (deployment artifact).
#[derive(Serialize, Deserialize)]
pub struct PredictorSnapshot {
    cfg: PredictorConfig,
    profile: WorkloadProfile,
    sys: SystemConfig,
    norm: LatencyNorm,
    model: Model,
}

impl LatencyPredictor {
    /// Trains a predictor on `(architecture, measured latency seconds)`
    /// pairs. Targets are learned in milliseconds (well-scaled for MAPE).
    pub fn train(
        cfg: PredictorConfig,
        profile: WorkloadProfile,
        sys: SystemConfig,
        data: &[(Architecture, f64)],
    ) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0x9E3779B9);
        // Fit the latency-channel normalization over the whole training
        // population's per-op LUT latencies (the paper's global z-score).
        let mut all_op_ms: Vec<f64> = Vec::new();
        for (arch, _) in data {
            for t in trace(arch, &profile) {
                let ms = if t.op.kind() == OpKind::Communicate {
                    sys.link.transfer_time(t.transfer_bytes) * 1e3
                } else {
                    let proc = match t.placement {
                        Placement::Device => &sys.device,
                        Placement::Edge => &sys.edge,
                    };
                    proc.latency(&t.cost) * 1e3
                };
                all_op_ms.push(ms);
            }
        }
        let norm = LatencyNorm::fit(&all_op_ms);
        let samples: Vec<(CsrGraph, Matrix, f32)> = data
            .iter()
            .map(|(arch, lat)| {
                let (g, x) =
                    abstract_architecture_with_norm(arch, &profile, &sys, cfg.features, &norm);
                (g, x, (*lat * 1e3) as f32)
            })
            .collect();
        let model = match cfg.backbone {
            Backbone::Gin => {
                let mut net = GinRegressor::new(FEATURE_DIM, cfg.hidden, cfg.layers, &mut rng);
                net.fit(&samples, cfg.epochs, cfg.lr);
                Model::Gin(net)
            }
            Backbone::Gcn => {
                let mut net = GcnRegressor::new(FEATURE_DIM, cfg.hidden, cfg.layers, &mut rng);
                net.fit(&samples, cfg.epochs, cfg.lr);
                Model::Gcn(net)
            }
        };
        Self { cfg, profile, sys, norm, model }
    }

    /// Predicts the system latency of an architecture, in seconds.
    pub fn predict_s(&self, arch: &Architecture) -> f64 {
        let (g, x) = abstract_architecture_with_norm(
            arch,
            &self.profile,
            &self.sys,
            self.cfg.features,
            &self.norm,
        );
        let ms = match &self.model {
            Model::Gin(net) => net.predict(&g, &x),
            Model::Gcn(net) => net.predict(&g, &x),
        };
        (ms as f64).max(0.0) * 1e-3
    }

    /// The training configuration.
    pub fn config(&self) -> &PredictorConfig {
        &self.cfg
    }

    /// Serializes the trained predictor to JSON.
    ///
    /// # Errors
    ///
    /// Returns any `serde_json` error.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        let snapshot = PredictorSnapshot {
            cfg: self.cfg,
            profile: self.profile,
            sys: self.sys.clone(),
            norm: self.norm,
            model: match &self.model {
                Model::Gin(m) => Model::Gin(m.clone()),
                Model::Gcn(m) => Model::Gcn(m.clone()),
            },
        };
        serde_json::to_string(&snapshot)
    }

    /// Restores a predictor from [`LatencyPredictor::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns any `serde_json` error.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        let snapshot: PredictorSnapshot = serde_json::from_str(json)?;
        Ok(Self {
            cfg: snapshot.cfg,
            profile: snapshot.profile,
            sys: snapshot.sys,
            norm: snapshot.norm,
            model: snapshot.model,
        })
    }
}

/// Fraction of predictions within `bound` relative error of the target —
/// the Fig. 9(a) metric (`bound` = 0.05 or 0.10).
pub fn within_bound_accuracy(preds: &[f64], targets: &[f64], bound: f64) -> f64 {
    assert_eq!(preds.len(), targets.len(), "pred/target length mismatch");
    if preds.is_empty() {
        return 0.0;
    }
    let ok = preds
        .iter()
        .zip(targets)
        .filter(|(p, t)| **t != 0.0 && ((*p - *t) / *t).abs() <= bound)
        .count();
    ok as f64 / preds.len() as f64
}

/// Fraction of pairs whose predicted latency ordering matches the true
/// ordering — the Fig. 9(b) "relative latency relationship" metric.
pub fn pairwise_order_accuracy(preds: &[f64], targets: &[f64]) -> f64 {
    assert_eq!(preds.len(), targets.len(), "pred/target length mismatch");
    let n = preds.len();
    if n < 2 {
        return 1.0;
    }
    let mut ok = 0usize;
    let mut total = 0usize;
    for i in 0..n {
        for j in i + 1..n {
            total += 1;
            if (preds[i] - preds[j]).signum() == (targets[i] - targets[j]).signum() {
                ok += 1;
            }
        }
    }
    ok as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::estimate_latency;
    use crate::space::DesignSpace;

    fn make_data(n: usize, seed: u64) -> (Vec<(Architecture, f64)>, WorkloadProfile, SystemConfig) {
        let profile = WorkloadProfile::modelnet40();
        let space = DesignSpace::paper(profile);
        let sys = SystemConfig::tx2_to_i7(40.0);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let data = (0..n)
            .map(|_| {
                let (arch, _) = space.sample_valid(&mut rng, 100_000);
                let lat = estimate_latency(&arch, &profile, &sys).total_s();
                (arch, lat)
            })
            .collect();
        (data, profile, sys)
    }

    #[test]
    fn abstraction_shapes() {
        let (data, profile, sys) = make_data(1, 1);
        let arch = &data[0].0;
        let (g, x) = abstract_architecture(arch, &profile, &sys, FeatureMode::Enhanced);
        assert_eq!(g.num_nodes(), arch.len() + 3);
        assert_eq!(x.shape(), (arch.len() + 3, FEATURE_DIM));
        // Global node reaches everything.
        assert_eq!(g.degree(arch.len() + 2), g.num_nodes()); // n-1 others + self loop
    }

    #[test]
    fn onehot_mode_zeroes_latency_channel() {
        let (data, profile, sys) = make_data(1, 2);
        let (_, x) = abstract_architecture(&data[0].0, &profile, &sys, FeatureMode::OneHot);
        for i in 0..x.rows() {
            assert_eq!(x[(i, NODE_TYPE_CHANNELS)], 0.0);
        }
    }

    #[test]
    fn enhanced_mode_populates_latency_channel() {
        let (data, profile, sys) = make_data(1, 3);
        let (_, x) = abstract_architecture(&data[0].0, &profile, &sys, FeatureMode::Enhanced);
        let nonzero = (0..x.rows()).filter(|&i| x[(i, NODE_TYPE_CHANNELS)] != 0.0).count();
        assert!(nonzero > 0, "z-scored latencies should be present");
    }

    #[test]
    fn trained_predictor_orders_architectures() {
        let (data, profile, sys) = make_data(40, 4);
        let cfg = PredictorConfig { epochs: 40, hidden: 32, ..PredictorConfig::default() };
        let predictor = LatencyPredictor::train(cfg, profile, sys, &data[..30]);
        let preds: Vec<f64> = data[30..].iter().map(|(a, _)| predictor.predict_s(a)).collect();
        let targets: Vec<f64> = data[30..].iter().map(|&(_, t)| t).collect();
        let order = pairwise_order_accuracy(&preds, &targets);
        assert!(order > 0.7, "ordering should be learnable, got {order}");
    }

    #[test]
    fn within_bound_metric_basics() {
        assert_eq!(within_bound_accuracy(&[1.0, 2.0], &[1.0, 4.0], 0.10), 0.5);
        assert_eq!(within_bound_accuracy(&[], &[], 0.1), 0.0);
        assert_eq!(within_bound_accuracy(&[1.05], &[1.0], 0.10), 1.0);
        assert_eq!(within_bound_accuracy(&[1.2], &[1.0], 0.10), 0.0);
    }

    #[test]
    fn pairwise_metric_basics() {
        assert_eq!(pairwise_order_accuracy(&[1.0, 2.0, 3.0], &[10.0, 20.0, 30.0]), 1.0);
        assert_eq!(pairwise_order_accuracy(&[3.0, 2.0, 1.0], &[10.0, 20.0, 30.0]), 0.0);
        assert_eq!(pairwise_order_accuracy(&[1.0], &[5.0]), 1.0);
    }

    #[test]
    fn gcn_backbone_also_trains() {
        let (data, profile, sys) = make_data(12, 5);
        let cfg = PredictorConfig {
            epochs: 10,
            hidden: 16,
            backbone: Backbone::Gcn,
            ..PredictorConfig::default()
        };
        let predictor = LatencyPredictor::train(cfg, profile, sys, &data);
        assert!(predictor.predict_s(&data[0].0).is_finite());
    }
}

/// [`Evaluator`](crate::eval::Evaluator) that prices latency with a trained
/// [`LatencyPredictor`] instead of a measurement oracle — the paper's
/// strict-latency search mode ("the highly accurate system latency
/// predictor ensures that the explored architecture meets the strict
/// latency requirements", Sec. 3.5). Energy still comes from the analytic
/// estimator, accuracy from the supplied callback.
pub struct PredictorEvaluator<F: Fn(&Architecture) -> f64 + Sync> {
    /// Trained latency predictor (carries profile + system).
    pub predictor: LatencyPredictor,
    /// Accuracy callback.
    pub accuracy_fn: F,
}

impl<F: Fn(&Architecture) -> f64 + Sync> crate::eval::Evaluator for PredictorEvaluator<F> {
    fn evaluate(&self, arch: &Architecture) -> crate::eval::Metrics {
        crate::eval::Metrics {
            accuracy: (self.accuracy_fn)(arch),
            latency_s: self.predictor.predict_s(arch),
            energy_j: crate::estimate::estimate_device_energy(
                arch,
                &self.predictor.profile,
                &self.predictor.sys,
            ),
        }
    }
}

impl<F: Fn(&Architecture) -> f64 + Sync> crate::eval::backend::EvalBackend
    for PredictorEvaluator<F>
{
    fn fidelity(&self) -> crate::eval::backend::Fidelity {
        crate::eval::backend::Fidelity::Predicted
    }

    fn cost_hint(&self) -> f64 {
        // One GIN forward pass per candidate: pricier than LUT
        // accumulation, far cheaper than a simulator run.
        3.0
    }

    fn name(&self) -> &str {
        "predictor"
    }
}

#[cfg(test)]
mod persistence_tests {
    use super::*;
    use crate::estimate::estimate_latency;
    use crate::space::DesignSpace;

    #[test]
    fn trained_predictor_round_trips_through_json() {
        let profile = WorkloadProfile::modelnet40();
        let space = DesignSpace::paper(profile);
        let sys = SystemConfig::tx2_to_i7(40.0);
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        let data: Vec<(Architecture, f64)> = (0..20)
            .map(|_| {
                let (arch, _) = space.sample_valid(&mut rng, 100_000);
                let lat = estimate_latency(&arch, &profile, &sys).total_s();
                (arch, lat)
            })
            .collect();
        let cfg = PredictorConfig { hidden: 16, epochs: 5, ..PredictorConfig::default() };
        let p = LatencyPredictor::train(cfg, profile, sys, &data);
        let json = p.to_json().expect("serialize");
        let restored = LatencyPredictor::from_json(&json).expect("deserialize");
        for (arch, _) in &data[..5] {
            assert_eq!(p.predict_s(arch), restored.predict_s(arch), "{arch}");
        }
    }
}
