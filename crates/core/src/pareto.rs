//! Multi-objective utilities: Pareto-front extraction and hypervolume.
//!
//! GCoDE is a multi-objective optimizer (accuracy vs latency vs energy);
//! Fig. 8 of the paper plots the accuracy/latency frontier. These helpers
//! extract fronts from search results and quantify frontier quality so the
//! λ-sweep ablation has a scalar to compare.

use crate::search::ScoredArch;
use serde::{Deserialize, Serialize};

/// A point in (maximize accuracy, minimize latency) space.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ParetoPoint {
    /// Accuracy in `[0, 1]` (maximized).
    pub accuracy: f64,
    /// Latency in seconds (minimized).
    pub latency_s: f64,
}

impl ParetoPoint {
    /// Whether `self` dominates `other`: at least as good in both
    /// objectives and strictly better in one.
    pub fn dominates(&self, other: &ParetoPoint) -> bool {
        let geq = self.accuracy >= other.accuracy && self.latency_s <= other.latency_s;
        let strict = self.accuracy > other.accuracy || self.latency_s < other.latency_s;
        geq && strict
    }
}

impl From<&ScoredArch> for ParetoPoint {
    fn from(s: &ScoredArch) -> Self {
        Self { accuracy: s.accuracy, latency_s: s.latency_s }
    }
}

/// Extracts the non-dominated subset, sorted by ascending latency.
///
/// # Example
///
/// ```
/// use gcode_core::pareto::{pareto_front, ParetoPoint};
///
/// let pts = vec![
///     ParetoPoint { accuracy: 0.90, latency_s: 0.010 },
///     ParetoPoint { accuracy: 0.92, latency_s: 0.020 },
///     ParetoPoint { accuracy: 0.91, latency_s: 0.030 }, // dominated
/// ];
/// let front = pareto_front(&pts);
/// assert_eq!(front.len(), 2);
/// ```
pub fn pareto_front(points: &[ParetoPoint]) -> Vec<ParetoPoint> {
    let mut front: Vec<ParetoPoint> = Vec::new();
    for &p in points {
        if points.iter().any(|q| q.dominates(&p)) {
            continue;
        }
        // Keep one representative per exact coordinate pair.
        if !front.iter().any(|f| f == &p) {
            front.push(p);
        }
    }
    front.sort_by(|a, b| a.latency_s.total_cmp(&b.latency_s));
    front
}

/// 2-D hypervolume of the front against a reference point
/// `(ref_accuracy_floor, ref_latency_ceiling)`: the area dominated by the
/// front inside the reference box. Larger is better.
///
/// Points outside the box contribute only their clipped part.
pub fn hypervolume(front: &[ParetoPoint], ref_accuracy: f64, ref_latency_s: f64) -> f64 {
    let mut pts = pareto_front(front);
    pts.retain(|p| p.accuracy > ref_accuracy && p.latency_s < ref_latency_s);
    if pts.is_empty() {
        return 0.0;
    }
    // Sweep latency ascending; accuracy strictly decreasing along a clean
    // front after pruning.
    let mut volume = 0.0;
    let mut prev_latency = ref_latency_s;
    for p in pts.iter().rev() {
        // From high latency to low: rectangle between this point's latency
        // and the previous sweep line, at this point's accuracy height.
        let width = prev_latency - p.latency_s;
        let height = p.accuracy - ref_accuracy;
        if width > 0.0 && height > 0.0 {
            volume += width * height;
        }
        prev_latency = p.latency_s;
    }
    volume
}

/// Extracts the accuracy/latency front of a set of scored candidates.
pub fn front_of(archs: &[ScoredArch]) -> Vec<ParetoPoint> {
    let pts: Vec<ParetoPoint> = archs.iter().map(ParetoPoint::from).collect();
    pareto_front(&pts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(accuracy: f64, latency_s: f64) -> ParetoPoint {
        ParetoPoint { accuracy, latency_s }
    }

    #[test]
    fn domination_rules() {
        assert!(p(0.9, 0.1).dominates(&p(0.8, 0.2)));
        assert!(p(0.9, 0.1).dominates(&p(0.9, 0.2)));
        assert!(!p(0.9, 0.1).dominates(&p(0.9, 0.1)), "no self-domination");
        assert!(!p(0.9, 0.2).dominates(&p(0.8, 0.1)), "trade-offs don't dominate");
    }

    #[test]
    fn front_removes_dominated_and_sorts() {
        let pts = vec![p(0.92, 0.05), p(0.90, 0.01), p(0.91, 0.06), p(0.85, 0.02)];
        let front = pareto_front(&pts);
        assert_eq!(front, vec![p(0.90, 0.01), p(0.92, 0.05)]);
    }

    #[test]
    fn front_of_empty_is_empty() {
        assert!(pareto_front(&[]).is_empty());
    }

    #[test]
    fn duplicates_collapse() {
        let pts = vec![p(0.9, 0.1), p(0.9, 0.1)];
        assert_eq!(pareto_front(&pts).len(), 1);
    }

    #[test]
    fn hypervolume_known_value() {
        // Single point (0.9 acc, 0.1 s) vs reference (0.8, 0.3):
        // area = (0.3 - 0.1) * (0.9 - 0.8) = 0.02.
        let hv = hypervolume(&[p(0.9, 0.1)], 0.8, 0.3);
        assert!((hv - 0.02).abs() < 1e-12);
    }

    #[test]
    fn hypervolume_additive_over_staircase() {
        // Two points forming a staircase.
        let hv = hypervolume(&[p(0.85, 0.05), p(0.95, 0.20)], 0.80, 0.30);
        // Rect A: latency 0.30→0.20 at height 0.15 = 0.015
        // Rect B: latency 0.20→0.05 at height 0.05 = 0.0075
        assert!((hv - 0.0225).abs() < 1e-12, "got {hv}");
    }

    #[test]
    fn better_front_has_larger_hypervolume() {
        let weak = vec![p(0.85, 0.10)];
        let strong = vec![p(0.85, 0.10), p(0.92, 0.05)];
        let r = |f: &[ParetoPoint]| hypervolume(f, 0.8, 0.3);
        assert!(r(&strong) > r(&weak));
    }

    #[test]
    fn points_outside_reference_contribute_nothing() {
        let hv = hypervolume(&[p(0.75, 0.1)], 0.8, 0.3);
        assert_eq!(hv, 0.0);
    }

    #[test]
    fn hypervolume_of_empty_front_is_zero() {
        assert_eq!(hypervolume(&[], 0.8, 0.3), 0.0);
    }

    #[test]
    fn ties_on_one_objective_keep_only_the_dominating_point() {
        // Same accuracy, different latency: the faster point dominates.
        let same_acc = pareto_front(&[p(0.9, 0.1), p(0.9, 0.2), p(0.9, 0.3)]);
        assert_eq!(same_acc, vec![p(0.9, 0.1)]);
        // Same latency, different accuracy: the more accurate dominates.
        let same_lat = pareto_front(&[p(0.85, 0.1), p(0.95, 0.1), p(0.90, 0.1)]);
        assert_eq!(same_lat, vec![p(0.95, 0.1)]);
        // A tie on one objective with a trade-off on the other keeps both.
        let trade = pareto_front(&[p(0.9, 0.1), p(0.95, 0.2)]);
        assert_eq!(trade.len(), 2);
    }

    #[test]
    fn front_is_insertion_order_independent() {
        let pts = [
            p(0.92, 0.05),
            p(0.90, 0.01),
            p(0.91, 0.06),
            p(0.85, 0.02),
            p(0.90, 0.01),
            p(0.95, 0.09),
        ];
        let baseline = pareto_front(&pts);
        // Exhaustively check a handful of distinct orderings, including
        // reversed and interleaved ones.
        let orders: [Vec<usize>; 4] = [
            vec![5, 4, 3, 2, 1, 0],
            vec![1, 3, 5, 0, 2, 4],
            vec![2, 0, 4, 5, 3, 1],
            vec![4, 5, 0, 1, 2, 3],
        ];
        for order in orders {
            let shuffled: Vec<ParetoPoint> = order.iter().map(|&i| pts[i]).collect();
            assert_eq!(pareto_front(&shuffled), baseline, "order {order:?}");
        }
    }

    #[test]
    fn duplicate_points_collapse_regardless_of_multiplicity() {
        let pts = vec![p(0.9, 0.1); 5];
        assert_eq!(pareto_front(&pts), vec![p(0.9, 0.1)]);
        // Duplicates of a dominated point still vanish entirely.
        let mixed = vec![p(0.8, 0.2), p(0.8, 0.2), p(0.9, 0.1)];
        assert_eq!(pareto_front(&mixed), vec![p(0.9, 0.1)]);
    }

    #[test]
    fn front_of_scored_archs_maps_fields() {
        use crate::arch::Architecture;
        use crate::op::{Op, SampleFn};

        let arch = Architecture::new(vec![Op::Sample(SampleFn::Knn { k: 20 })]);
        let mk = |accuracy: f64, latency_s: f64| ScoredArch {
            arch: arch.clone(),
            score: 0.0,
            accuracy,
            latency_s,
            energy_j: 0.1,
        };
        let front = front_of(&[mk(0.9, 0.1), mk(0.8, 0.2), mk(0.92, 0.3)]);
        assert_eq!(front, vec![p(0.9, 0.1), p(0.92, 0.3)]);
    }
}
