//! Cost estimation and on-device energy estimation (Sec. 3.5) — the
//! closed-form models behind the analytic evaluation backend
//! ([`crate::eval::backend::AnalyticBackend`]).

use crate::arch::{Architecture, WorkloadProfile};
use crate::cost::{trace, TracedOp};
use crate::op::{OpKind, Placement};
use gcode_hardware::SystemConfig;
use serde::{Deserialize, Serialize};

/// Per-op latency attribution of one architecture on one system.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencyBreakdown {
    /// Seconds spent computing on the device.
    pub device_s: f64,
    /// Seconds spent computing on the edge.
    pub edge_s: f64,
    /// Seconds spent transferring (all `Communicate` ops + output return).
    pub comm_s: f64,
    /// Per-op `(label, placement, seconds)` rows in execution order.
    pub per_op: Vec<(String, Placement, f64)>,
}

impl LatencyBreakdown {
    /// End-to-end single-frame latency (sequential, no pipelining).
    pub fn total_s(&self) -> f64 {
        self.device_s + self.edge_s + self.comm_s
    }
}

/// LUT-style cost estimation: accumulate every op's latency on its mapped
/// processor plus link transfer times.
///
/// The paper: "based on the maintained latency LUT, we can easily accumulate
/// all operation latency in the architecture graph... this estimation may
/// not include potential runtime overheads" — those overheads (pipeline
/// interactions, queueing, per-frame sync) are exactly what `gcode-sim`
/// adds on top.
///
/// # Example
///
/// ```
/// use gcode_core::arch::{Architecture, WorkloadProfile};
/// use gcode_core::estimate::estimate_latency;
/// use gcode_core::op::{Op, SampleFn};
/// use gcode_hardware::SystemConfig;
/// use gcode_nn::{agg::AggMode, pool::PoolMode};
///
/// let arch = Architecture::new(vec![
///     Op::Sample(SampleFn::Knn { k: 20 }),
///     Op::Aggregate(AggMode::Max),
///     Op::GlobalPool(PoolMode::Max),
/// ]);
/// let b = estimate_latency(&arch, &WorkloadProfile::modelnet40(),
///                          &SystemConfig::tx2_to_i7(40.0));
/// assert!(b.total_s() > 0.0);
/// ```
pub fn estimate_latency(
    arch: &Architecture,
    profile: &WorkloadProfile,
    sys: &SystemConfig,
) -> LatencyBreakdown {
    breakdown_from_trace(&trace(arch, profile), arch, sys)
}

/// Cost estimation over a pre-computed trace (lets callers reuse traces).
pub fn breakdown_from_trace(
    traced: &[TracedOp],
    arch: &Architecture,
    sys: &SystemConfig,
) -> LatencyBreakdown {
    let mut device_s = 0.0;
    let mut edge_s = 0.0;
    let mut comm_s = 0.0;
    let mut per_op = Vec::with_capacity(traced.len() + 1);
    for t in traced {
        let seconds = if t.op.kind() == OpKind::Communicate {
            let s = sys.link.transfer_time(t.transfer_bytes);
            comm_s += s;
            s
        } else {
            let proc = match t.placement {
                Placement::Device => &sys.device,
                Placement::Edge => &sys.edge,
            };
            let s = proc.latency(&t.cost);
            match t.placement {
                Placement::Device => device_s += s,
                Placement::Edge => edge_s += s,
            }
            s
        };
        per_op.push((t.op.to_string(), t.placement, seconds));
    }
    // If the classifier output lands on the edge, the (tiny) result returns
    // to the device.
    if arch.output_placement() == Placement::Edge {
        let s = sys.link.transfer_time(16);
        comm_s += s;
        per_op.push(("ReturnOutput".to_string(), Placement::Edge, s));
    }
    LatencyBreakdown { device_s, edge_s, comm_s, per_op }
}

/// On-device energy estimate per frame (Sec. 3.5):
/// `E_total = E_idle + E_run + E_comm`.
///
/// * `E_run`: device active power × device compute time.
/// * `E_idle`: device idle power × time the device waits on the edge.
/// * `E_comm`: radio energy over all transfers, using the Huang et al.
///   power model (device pays tx power for device→edge transfers and rx
///   power for edge→device transfers).
pub fn estimate_device_energy(
    arch: &Architecture,
    profile: &WorkloadProfile,
    sys: &SystemConfig,
) -> f64 {
    let traced = trace(arch, profile);
    let b = breakdown_from_trace(&traced, arch, sys);
    energy_from_parts(&traced, &b, arch, sys)
}

/// Energy computation over a pre-computed trace and breakdown — lets the
/// analytic backend price latency and energy off a single trace.
pub(crate) fn energy_from_parts(
    traced: &[TracedOp],
    b: &LatencyBreakdown,
    arch: &Architecture,
    sys: &SystemConfig,
) -> f64 {
    let e_run = sys.device.run_power_w * b.device_s;
    let e_idle = sys.device.idle_power_w * (b.edge_s + b.comm_s);
    let mut sent = 0usize;
    let mut received = 0usize;
    for t in traced {
        if t.op.kind() == OpKind::Communicate {
            match t.placement {
                Placement::Device => sent += t.transfer_bytes,
                Placement::Edge => received += t.transfer_bytes,
            }
        }
    }
    if arch.output_placement() == Placement::Edge {
        received += 16;
    }
    let e_comm = sys.power.device_comm_energy(&sys.link, sent, received);
    e_run + e_idle + e_comm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{Op, SampleFn};
    use gcode_nn::agg::AggMode;
    use gcode_nn::pool::PoolMode;

    fn pc() -> WorkloadProfile {
        WorkloadProfile::modelnet40()
    }

    fn device_only() -> Architecture {
        Architecture::new(vec![
            Op::Sample(SampleFn::Knn { k: 20 }),
            Op::Aggregate(AggMode::Max),
            Op::Combine { dim: 64 },
            Op::GlobalPool(PoolMode::Max),
        ])
    }

    fn split_arch() -> Architecture {
        Architecture::new(vec![
            Op::Sample(SampleFn::Knn { k: 20 }),
            Op::Communicate,
            Op::Aggregate(AggMode::Max),
            Op::Combine { dim: 64 },
            Op::GlobalPool(PoolMode::Max),
        ])
    }

    #[test]
    fn device_only_has_no_comm_or_edge_time() {
        let b = estimate_latency(&device_only(), &pc(), &SystemConfig::tx2_to_i7(40.0));
        assert_eq!(b.edge_s, 0.0);
        assert_eq!(b.comm_s, 0.0);
        assert!(b.device_s > 0.0);
    }

    #[test]
    fn split_moves_work_to_edge_and_adds_comm() {
        let sys = SystemConfig::tx2_to_i7(40.0);
        let b = estimate_latency(&split_arch(), &pc(), &sys);
        assert!(b.edge_s > 0.0);
        assert!(b.comm_s > 0.0);
        assert!(b.device_s > 0.0); // the KNN stays on the device
    }

    #[test]
    fn slower_link_increases_total() {
        let fast = estimate_latency(&split_arch(), &pc(), &SystemConfig::tx2_to_i7(40.0));
        let slow = estimate_latency(&split_arch(), &pc(), &SystemConfig::tx2_to_i7(10.0));
        assert!(slow.total_s() > fast.total_s());
        assert_eq!(slow.device_s, fast.device_s);
    }

    #[test]
    fn output_on_edge_adds_return_row() {
        let sys = SystemConfig::tx2_to_i7(40.0);
        let b = estimate_latency(&split_arch(), &pc(), &sys);
        assert!(b.per_op.iter().any(|(n, _, _)| n == "ReturnOutput"));
        let b2 = estimate_latency(&device_only(), &pc(), &sys);
        assert!(!b2.per_op.iter().any(|(n, _, _)| n == "ReturnOutput"));
    }

    #[test]
    fn offloading_knn_to_i7_beats_tx2_device_only() {
        // The Fig. 11(a) insight: feature-space KNN at DGCNN scale (wide
        // features, recomputed per layer) is inefficient on the TX2 and
        // cheap on the i7, so communicate-early wins on the TX2⇌i7 system.
        let heavy_tail = vec![
            Op::Sample(SampleFn::Knn { k: 20 }),
            Op::Aggregate(AggMode::Max),
            Op::Combine { dim: 128 },
            Op::Sample(SampleFn::Knn { k: 20 }),
            Op::Aggregate(AggMode::Max),
            Op::Combine { dim: 128 },
            Op::Sample(SampleFn::Knn { k: 20 }),
            Op::Aggregate(AggMode::Max),
            Op::GlobalPool(PoolMode::Max),
        ];
        let sys = SystemConfig::tx2_to_i7(40.0);
        let all_device =
            estimate_latency(&Architecture::new(heavy_tail.clone()), &pc(), &sys).total_s();
        let mut offload_ops = vec![Op::Communicate];
        offload_ops.extend(heavy_tail);
        let offloaded = estimate_latency(&Architecture::new(offload_ops), &pc(), &sys).total_s();
        assert!(offloaded < all_device, "offloading should win: {offloaded} vs {all_device}");
    }

    #[test]
    fn energy_split_below_device_only_for_heavy_work() {
        let sys = SystemConfig::pi_to_1060(40.0);
        let e_dev = estimate_device_energy(&device_only(), &pc(), &sys);
        let offload_all = Architecture::new(vec![
            Op::Communicate,
            Op::Sample(SampleFn::Knn { k: 20 }),
            Op::Aggregate(AggMode::Max),
            Op::Combine { dim: 64 },
            Op::GlobalPool(PoolMode::Max),
        ]);
        let e_off = estimate_device_energy(&offload_all, &pc(), &sys);
        assert!(e_off < e_dev, "edge-only should save Pi energy: {e_off} vs {e_dev}");
    }

    #[test]
    fn energy_positive_and_finite() {
        for sys in SystemConfig::paper_systems(10.0) {
            let e = estimate_device_energy(&split_arch(), &pc(), &sys);
            assert!(e.is_finite() && e > 0.0);
        }
    }

    #[test]
    fn analytic_backend_wires_through() {
        use crate::eval::backend::AnalyticBackend;
        use crate::eval::Evaluator;

        let eval = AnalyticBackend {
            profile: pc(),
            sys: SystemConfig::tx2_to_1060(40.0),
            accuracy_fn: |_a: &Architecture| 0.9,
        };
        let arch = device_only();
        let m = eval.evaluate(&arch);
        assert!(m.latency_s > 0.0);
        assert!(m.energy_j > 0.0);
        assert_eq!(m.accuracy, 0.9);
        // The single-trace fast path must agree with the standalone
        // estimators exactly.
        assert_eq!(m.latency_s, estimate_latency(&arch, &pc(), &eval.sys).total_s());
        assert_eq!(m.energy_j, estimate_device_energy(&arch, &pc(), &eval.sys));
        // Batch evaluation is the same computation.
        let batch = eval.evaluate_batch(&[arch.clone(), split_arch()]);
        assert_eq!(batch[0], m);
    }
}
