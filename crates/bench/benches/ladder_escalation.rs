//! Overhead of the fidelity-ladder machinery itself: `CascadeBackend`'s
//! screen/rank/escalate plumbing on a fixed 64-candidate batch, from the
//! free-floor (pure screening, nothing escalates) through a classic pair
//! to a three-rung ladder. Engine tiers are excluded on purpose — sockets
//! would drown the plumbing cost this bench isolates.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gcode_core::arch::{Architecture, WorkloadProfile};
use gcode_core::eval::backend::{AnalyticBackend, CascadeBackend};
use gcode_core::eval::{Evaluator, Objective};
use gcode_core::space::DesignSpace;
use gcode_core::surrogate::{SurrogateAccuracy, SurrogateTask};
use gcode_hardware::SystemConfig;
use gcode_sim::{SimBackend, SimConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const BATCH: usize = 64;

fn analytic() -> AnalyticBackend<impl Fn(&Architecture) -> f64 + Sync> {
    let surrogate = SurrogateAccuracy::new(SurrogateTask::ModelNet40);
    AnalyticBackend {
        profile: WorkloadProfile::modelnet40(),
        sys: SystemConfig::tx2_to_i7(40.0),
        accuracy_fn: move |a: &Architecture| surrogate.overall_accuracy(a),
    }
}

fn sim(frames: usize) -> SimBackend<impl Fn(&Architecture) -> f64 + Sync> {
    let surrogate = SurrogateAccuracy::new(SurrogateTask::ModelNet40);
    SimBackend {
        profile: WorkloadProfile::modelnet40(),
        sys: SystemConfig::tx2_to_i7(40.0),
        sim: SimConfig { frames, pipelined: frames > 1, ..SimConfig::default() },
        accuracy_fn: move |a: &Architecture| surrogate.overall_accuracy(a),
    }
}

fn bench_ladder_escalation(c: &mut Criterion) {
    let space = DesignSpace::paper(WorkloadProfile::modelnet40());
    let mut rng = ChaCha8Rng::seed_from_u64(73);
    let batch: Vec<Architecture> =
        (0..BATCH).map(|_| space.sample_valid(&mut rng, 100_000).0).collect();
    let objective = Objective::new(0.25, 0.5, 3.0);

    let cheap = analytic();
    let mid = sim(1);
    let top = sim(32);

    let mut group = c.benchmark_group(format!("ladder_escalation/{BATCH}"));
    group.bench_function("analytic_only", |b| {
        b.iter(|| black_box(cheap.evaluate_batch(black_box(&batch))));
    });
    // Pure screening: the rank/cut plumbing with zero escalations — the
    // ladder's overhead floor relative to `analytic_only`.
    let screen_only =
        CascadeBackend::new(&cheap, &mid, objective).with_keep_frac(0.0).with_min_keep(0);
    group.bench_function("pair_keep0", |b| {
        b.iter(|| black_box(screen_only.evaluate_batch(black_box(&batch))));
    });
    let pair = CascadeBackend::new(&cheap, &mid, objective).with_keep_frac(0.25);
    group.bench_function("pair_keep25", |b| {
        b.iter(|| black_box(pair.evaluate_batch(black_box(&batch))));
    });
    let ladder =
        CascadeBackend::ladder(vec![&cheap, &mid, &top], objective).with_keep_fracs(&[0.25, 0.5]);
    group.bench_function("three_tier_25_50", |b| {
        b.iter(|| black_box(ladder.evaluate_batch(black_box(&batch))));
    });
    let adaptive = CascadeBackend::ladder(vec![&cheap, &mid, &top], objective)
        .with_keep_fracs(&[0.25, 0.5])
        .with_adaptive_keep();
    group.bench_function("three_tier_adaptive", |b| {
        b.iter(|| black_box(adaptive.evaluate_batch(black_box(&batch))));
    });
    group.finish();
}

criterion_group!(benches, bench_ladder_escalation);
criterion_main!(benches);
