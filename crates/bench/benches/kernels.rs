//! Criterion micro-benchmarks of the substrate kernels and the GCoDE
//! pipeline stages: the costs that determine how fast the reproduction's
//! own machinery runs (search iterations, simulation, predictor features,
//! compression, GNN kernels).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gcode_baselines::models;
use gcode_core::arch::{Architecture, WorkloadProfile};
use gcode_core::estimate::estimate_latency;
use gcode_core::eval::Objective;
use gcode_core::predictor::{abstract_architecture, FeatureMode};
use gcode_core::search::{random_search, SearchConfig};
use gcode_core::space::DesignSpace;
use gcode_core::surrogate::{SurrogateAccuracy, SurrogateTask};
use gcode_graph::datasets::PointCloudDataset;
use gcode_graph::knn::knn_graph;
use gcode_hardware::SystemConfig;
use gcode_nn::agg::{aggregate, AggMode};
use gcode_sim::{simulate, SimBackend, SimConfig};
use gcode_tensor::Matrix;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn bench_knn(c: &mut Criterion) {
    let mut group = c.benchmark_group("knn_graph");
    for &n in &[128usize, 512, 1024] {
        let ds = PointCloudDataset::generate(1, n, 4, 1);
        let pts = &ds.samples()[0].features;
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| knn_graph(black_box(pts), 20));
        });
    }
    group.finish();
}

fn bench_aggregate(c: &mut Criterion) {
    let ds = PointCloudDataset::generate(1, 1024, 4, 2);
    let pts = &ds.samples()[0].features;
    let g = knn_graph(pts, 20);
    let x = Matrix::full(1024, 64, 0.5);
    let mut group = c.benchmark_group("aggregate_1024x64_k20");
    for mode in AggMode::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(mode), &mode, |b, &m| {
            b.iter(|| aggregate(black_box(&g), black_box(&x), m));
        });
    }
    group.finish();
}

fn bench_matmul(c: &mut Criterion) {
    let a = Matrix::full(1024, 64, 0.25);
    let w = Matrix::full(64, 128, 0.5);
    c.bench_function("matmul_1024x64x128", |b| {
        b.iter(|| black_box(&a).matmul(black_box(&w)));
    });
}

fn bench_compress(c: &mut Criterion) {
    let values: Vec<f32> = (0..1024 * 64).map(|i| (i as f32 * 0.001).sin()).collect();
    c.bench_function("compress_floats_256KiB", |b| {
        b.iter(|| gcode_compress::compress_floats(black_box(&values)));
    });
    let packed = gcode_compress::compress_floats(&values);
    c.bench_function("decompress_floats_256KiB", |b| {
        b.iter(|| gcode_compress::decompress_floats(black_box(&packed)).expect("valid"));
    });
}

fn bench_cost_models(c: &mut Criterion) {
    let profile = WorkloadProfile::modelnet40();
    let sys = SystemConfig::tx2_to_i7(40.0);
    let dgcnn = models::dgcnn().arch;
    c.bench_function("estimate_latency_dgcnn", |b| {
        b.iter(|| estimate_latency(black_box(&dgcnn), &profile, &sys));
    });
    let sim = SimConfig::single_frame();
    c.bench_function("simulate_dgcnn_single_frame", |b| {
        b.iter(|| simulate(black_box(&dgcnn), &profile, &sys, &sim));
    });
    let sim64 = SimConfig { frames: 64, ..SimConfig::default() };
    c.bench_function("simulate_dgcnn_64_frames", |b| {
        b.iter(|| simulate(black_box(&dgcnn), &profile, &sys, &sim64));
    });
}

fn bench_predictor_features(c: &mut Criterion) {
    let profile = WorkloadProfile::modelnet40();
    let sys = SystemConfig::pi_to_1060(40.0);
    let space = DesignSpace::paper(profile);
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let (arch, _) = space.sample_valid(&mut rng, 100_000);
    c.bench_function("abstract_architecture_enhanced", |b| {
        b.iter(|| abstract_architecture(black_box(&arch), &profile, &sys, FeatureMode::Enhanced));
    });
}

fn bench_search(c: &mut Criterion) {
    let profile = WorkloadProfile::modelnet40();
    let space = DesignSpace::paper(profile);
    let surrogate = SurrogateAccuracy::new(SurrogateTask::ModelNet40);
    let objective = Objective::new(0.1, 0.15, 1.0);
    c.bench_function("random_search_100_trials", |b| {
        b.iter(|| {
            let eval = SimBackend {
                profile,
                sys: SystemConfig::tx2_to_i7(40.0),
                sim: SimConfig::single_frame(),
                accuracy_fn: |a: &Architecture| surrogate.overall_accuracy(a),
            };
            let cfg = SearchConfig { iterations: 100, seed: 5, ..SearchConfig::default() };
            random_search(black_box(&space), &cfg, &objective, &eval)
        });
    });
}

criterion_group!(
    benches,
    bench_knn,
    bench_aggregate,
    bench_matmul,
    bench_compress,
    bench_cost_models,
    bench_predictor_features,
    bench_search
);
criterion_main!(benches);
