//! Throughput of the worker-sharded batch driver: `evaluate_batch_workers`
//! on the analytic backend at workers ∈ {1, 2, 4, 8}, over a fixed
//! 256-candidate batch — so BENCH_*.json captures the parallel speedup
//! (or, on single-core runners, the sharding overhead floor).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use gcode_core::arch::{Architecture, WorkloadProfile};
use gcode_core::eval::backend::AnalyticBackend;
use gcode_core::eval::Evaluator;
use gcode_core::space::DesignSpace;
use gcode_core::surrogate::{SurrogateAccuracy, SurrogateTask};
use gcode_hardware::SystemConfig;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const BATCH: usize = 256;

fn sample_batch(space: &DesignSpace) -> Vec<Architecture> {
    let mut rng = ChaCha8Rng::seed_from_u64(71);
    (0..BATCH).map(|_| space.sample_valid(&mut rng, 100_000).0).collect()
}

fn bench_evaluate_batch_workers(c: &mut Criterion) {
    let profile = WorkloadProfile::modelnet40();
    let space = DesignSpace::paper(profile);
    let surrogate = SurrogateAccuracy::new(SurrogateTask::ModelNet40);
    let backend = AnalyticBackend {
        profile,
        sys: SystemConfig::tx2_to_i7(40.0),
        accuracy_fn: move |a: &Architecture| surrogate.overall_accuracy(a),
    };
    let batch = sample_batch(&space);

    let mut group = c.benchmark_group(format!("evaluate_batch/analytic/{BATCH}"));
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("workers", workers), &workers, |b, &workers| {
            b.iter(|| black_box(backend.evaluate_batch_workers(black_box(&batch), workers)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_evaluate_batch_workers);
criterion_main!(benches);
