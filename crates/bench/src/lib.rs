//! Shared harness for the table/figure generators.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md §4 for the index). This library holds the pieces they
//! share: running a GCoDE search on a system, evaluating baselines in each
//! collaboration mode, and plain-text table formatting.

use gcode_baselines::models::{as_edge_only, Baseline};
use gcode_core::arch::{Architecture, WorkloadProfile};
use gcode_core::eval::{Objective, SearchReport, SearchSession};
use gcode_core::search::{RandomSearch, ScoredArch, SearchConfig, SearchResult};
use gcode_core::space::DesignSpace;
use gcode_core::surrogate::{SurrogateAccuracy, SurrogateTask};
use gcode_hardware::SystemConfig;
use gcode_sim::{simulate, SimBackend, SimConfig};

/// Latency (ms) and device energy (J) of an architecture on a system,
/// measured by the single-frame simulator.
pub fn measure(arch: &Architecture, profile: &WorkloadProfile, sys: &SystemConfig) -> (f64, f64) {
    let r = simulate(arch, profile, sys, &SimConfig::single_frame());
    (r.frame_latency_s * 1e3, r.device_energy_j)
}

/// Pipelined throughput in frames/second over a 64-frame stream.
pub fn measure_fps(arch: &Architecture, profile: &WorkloadProfile, sys: &SystemConfig) -> f64 {
    let cfg = SimConfig { frames: 64, ..SimConfig::default() };
    simulate(arch, profile, sys, &cfg).fps
}

/// A baseline evaluated in device-only and edge-only modes.
pub struct BaselineRows {
    /// The baseline.
    pub baseline: Baseline,
    /// `(latency ms, energy J)` device-only.
    pub device: (f64, f64),
    /// `(latency ms, energy J)` edge-only.
    pub edge: (f64, f64),
}

/// Evaluates a baseline's D and E modes on a system.
pub fn baseline_rows(
    baseline: Baseline,
    profile: &WorkloadProfile,
    sys: &SystemConfig,
) -> BaselineRows {
    let device = measure(&baseline.arch, profile, sys);
    let edge = measure(&as_edge_only(&baseline.arch), profile, sys);
    BaselineRows { baseline, device, edge }
}

/// GCoDE search settings used by the table generators: the constraints are
/// set relative to the device-only DGCNN anchor so every system gets a
/// feasible but non-trivial budget.
pub fn table_search_config(
    anchor_latency_s: f64,
    anchor_energy_j: f64,
    seed: u64,
) -> (SearchConfig, Objective) {
    (
        SearchConfig { iterations: 2000, seed, ..SearchConfig::default() },
        Objective::new(0.25, anchor_latency_s, anchor_energy_j),
    )
}

/// Runs the full GCoDE pipeline (simulator-in-the-loop constraint-based
/// random search with the calibrated surrogate accuracy) for one system.
pub fn run_gcode_search(
    profile: WorkloadProfile,
    task: SurrogateTask,
    sys: &SystemConfig,
    cfg: &SearchConfig,
    objective: &Objective,
) -> SearchResult {
    run_gcode_search_reported(profile, task, sys, cfg, objective).0
}

/// Like [`run_gcode_search`], but also returns the session's
/// [`SearchReport`] (backend, memo-cache hit rate, unique evaluations) so
/// generators can surface evaluation-side statistics next to the zoo.
pub fn run_gcode_search_reported(
    profile: WorkloadProfile,
    task: SurrogateTask,
    sys: &SystemConfig,
    cfg: &SearchConfig,
    objective: &Objective,
) -> (SearchResult, SearchReport) {
    let space = DesignSpace::paper(profile);
    let surrogate = SurrogateAccuracy::new(task);
    let eval = SimBackend {
        profile,
        sys: sys.clone(),
        sim: SimConfig::single_frame(),
        accuracy_fn: move |a: &Architecture| surrogate.overall_accuracy(a),
    };
    let mut session = SearchSession::new(&space, &eval).with_objective(*objective);
    let result = session.run(&RandomSearch::new(*cfg));
    let report = session.report("sim", &result);
    (result, report)
}

/// Convenience: the GCoDE candidate a user would deploy for low latency —
/// the fastest zoo entry whose accuracy stays within the paper's reported
/// band (≥ 92.1% OA on ModelNet40 / ≥ 76.1% on MR), falling back to the
/// best-scoring entry when none qualifies.
pub fn best_gcode(
    profile: WorkloadProfile,
    task: SurrogateTask,
    sys: &SystemConfig,
    seed: u64,
) -> ScoredArch {
    let (dgcnn, acc_floor) = if matches!(task, SurrogateTask::ModelNet40) {
        (gcode_baselines::models::dgcnn().arch, 0.921)
    } else {
        (gcode_baselines::models::pnas_text().arch, 0.761)
    };
    let (anchor_ms, anchor_j) = measure(&dgcnn, &profile, sys);
    let (cfg, objective) = table_search_config(anchor_ms / 1e3, anchor_j, seed);
    let result = run_gcode_search(profile, task, sys, &cfg, &objective);
    result
        .zoo
        .iter()
        .filter(|z| z.accuracy >= acc_floor)
        .min_by(|a, b| a.latency_s.total_cmp(&b.latency_s))
        .or_else(|| result.best())
        .cloned()
        .expect("search with DGCNN-anchored constraints always finds candidates")
}

/// Prints a row of fixed-width cells.
pub fn print_row(cells: &[String], widths: &[usize]) {
    let line: Vec<String> =
        cells.iter().zip(widths).map(|(c, w)| format!("{c:>w$}", w = w)).collect();
    println!("{}", line.join("  "));
}

/// Formats a latency with its speedup annotation, e.g. `"31.9 (7.6x)"`.
pub fn fmt_speedup(ms: f64, baseline_ms: f64) -> String {
    format!("{ms:8.1} ({:4.1}x)", baseline_ms / ms)
}

/// Formats an energy with its saving annotation, e.g. `"0.3 (88%)"`.
pub fn fmt_saving(j: f64, baseline_j: f64) -> String {
    format!("{j:6.2} ({:4.1}%)", (1.0 - j / baseline_j) * 100.0)
}

/// Section header for the generators' stdout.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcode_core::surrogate::SurrogateTask;

    #[test]
    fn measure_returns_positive_metrics() {
        let d = gcode_baselines::models::dgcnn();
        let (ms, j) =
            measure(&d.arch, &WorkloadProfile::modelnet40(), &SystemConfig::tx2_to_i7(40.0));
        assert!(ms > 0.0 && j > 0.0);
    }

    #[test]
    fn gcode_beats_dgcnn_device_only_on_every_system() {
        // The headline claim of Tab. 2, checked end-to-end at reduced
        // search budget.
        let profile = WorkloadProfile::modelnet40();
        for sys in SystemConfig::paper_systems(40.0) {
            let dgcnn = gcode_baselines::models::dgcnn();
            let (base_ms, base_j) = measure(&dgcnn.arch, &profile, &sys);
            let (base_cfg, objective) = table_search_config(base_ms / 1e3, base_j, 3);
            let cfg = SearchConfig { iterations: 300, ..base_cfg };
            let result =
                run_gcode_search(profile, SurrogateTask::ModelNet40, &sys, &cfg, &objective);
            let best = result.best().expect("found");
            let (ms, j) = measure(&best.arch, &profile, &sys);
            assert!(ms < base_ms, "{}: GCoDE {ms:.1} vs DGCNN {base_ms:.1}", sys.label());
            assert!(j < base_j, "{}: GCoDE {j:.2} J vs DGCNN {base_j:.2} J", sys.label());
        }
    }

    #[test]
    fn fps_exceeds_single_frame_rate() {
        let h = gcode_baselines::models::branchy_gnn();
        let profile = WorkloadProfile::modelnet40();
        let sys = SystemConfig::tx2_to_i7(40.0);
        let fps = measure_fps(&h.arch, &profile, &sys);
        let (ms, _) = measure(&h.arch, &profile, &sys);
        assert!(fps >= 1000.0 / ms * 0.95, "pipelining should not lose throughput");
    }
}
