//! Figure 2: per-operation share of DGCNN latency on Jetson TX2 and the
//! transfer size required to split after each operation.

use gcode_baselines::models;
use gcode_bench::{header, print_row};
use gcode_core::arch::WorkloadProfile;
use gcode_core::cost::trace;
use gcode_hardware::{Processor, SystemConfig};

fn main() {
    let profile = WorkloadProfile::modelnet40();
    let dgcnn = models::dgcnn();
    let sys = SystemConfig::new(
        Processor::jetson_tx2(),
        Processor::intel_i7_7700(),
        gcode_hardware::Link::mbps(40.0),
    );
    header("Fig. 2 — DGCNN on Jetson TX2: per-op latency share and split transfer size");
    let traced = trace(&dgcnn.arch, &profile);
    let total: f64 = traced.iter().map(|t| sys.device.latency(&t.cost)).sum();
    let widths = [4usize, 20, 14, 16];
    print_row(
        ["#", "operation", "latency (%)", "transfer (bytes)"].map(String::from).as_ref(),
        &widths,
    );
    for (i, t) in traced.iter().enumerate() {
        let ms = sys.device.latency(&t.cost);
        print_row(
            &[
                format!("{i}"),
                t.op.to_string(),
                format!("{:10.1}", 100.0 * ms / total),
                format!("{:12}", t.state_after.transfer_bytes()),
            ],
            &widths,
        );
    }
    println!(
        "\nShape checks: later KNN (Sample) ops grow toward >25% of total; \
         transfer size jumps after KNN (graph data) and after the wide MLP, \
         and collapses after GlobalPool (~{}x reduction).",
        traced[traced.len() - 4].state_after.transfer_bytes().max(1)
            / traced[traced.len() - 3].state_after.transfer_bytes().max(1)
    );
}
