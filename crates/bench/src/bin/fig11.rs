//! Figure 11: visualization of the architectures GCoDE designs for the
//! TX2 ⇌ i7 system on both workloads, rendered as device/edge lanes.

use gcode_bench::{best_gcode, header, measure};
use gcode_core::arch::WorkloadProfile;
use gcode_core::surrogate::SurrogateTask;
use gcode_hardware::SystemConfig;

fn main() {
    let sys = SystemConfig::tx2_to_i7(40.0);
    for (label, profile, task, seed) in [
        ("ModelNet40", WorkloadProfile::modelnet40(), SurrogateTask::ModelNet40, 7u64),
        ("MR", WorkloadProfile::mr(), SurrogateTask::Mr, 11),
    ] {
        header(&format!("Fig. 11 — GCoDE design for TX2 ⇌ i7 on {label}"));
        let best = best_gcode(profile, task, &sys, seed);
        println!("{}", best.arch.render());
        let (ms, j) = measure(&best.arch, &profile, &sys);
        println!(
            "accuracy {:.1}%  latency {ms:.1} ms  device energy {j:.3} J  (score {:.3})",
            best.accuracy * 100.0,
            best.score
        );
    }
    println!(
        "\nShape checks: on ModelNet40 the design offloads KNN-heavy work away \
         from the TX2 (the paper maps KNN to the KNN-friendly i7); on MR the \
         bottleneck Combine stays on the TX2 and data crosses after dimension \
         reduction."
    );
}
