//! Table 2: ModelNet40 performance comparison across four device-edge
//! systems and two bandwidths, all methods and collaboration modes.

use gcode_baselines::models;
use gcode_baselines::partition::{best_partition, PartitionObjective};
use gcode_bench::{baseline_rows, best_gcode, header, measure, print_row};
use gcode_core::arch::WorkloadProfile;
use gcode_core::surrogate::{SurrogateAccuracy, SurrogateTask};
use gcode_hardware::SystemConfig;
use gcode_sim::SimConfig;

fn main() {
    let profile = WorkloadProfile::modelnet40();
    let widths = [24usize, 12, 4, 18, 10];

    for bandwidth in [40.0, 10.0] {
        header(&format!(
            "Table 2 — ModelNet40, S_L <= {bandwidth} Mbps (latency ms, device energy J)"
        ));
        for sys in SystemConfig::paper_systems(bandwidth) {
            println!("\n--- {} ---", sys.label());
            print_row(
                ["method", "OA (%)", "mode", "latency (ms)", "energy (J)"]
                    .map(String::from)
                    .as_ref(),
                &widths,
            );
            let dgcnn = baseline_rows(models::dgcnn(), &profile, &sys);
            let base_ms = dgcnn.device.0;
            let base_j = dgcnn.device.1;
            let mut rows: Vec<(String, String, &str, f64, f64)> = Vec::new();
            for b in [
                baseline_rows(models::dgcnn(), &profile, &sys),
                baseline_rows(models::optimized_dgcnn(), &profile, &sys),
                baseline_rows(models::hgnas(), &profile, &sys),
            ] {
                let acc = format!("{:.1}", b.baseline.overall_accuracy);
                rows.push((b.baseline.name.clone(), acc.clone(), "D", b.device.0, b.device.1));
                rows.push((b.baseline.name.clone(), acc, "E", b.edge.0, b.edge.1));
            }
            // BRANCHY-GNN co-inference.
            let branchy = models::branchy_gnn();
            let (ms, j) = measure(&branchy.arch, &profile, &sys);
            rows.push((
                branchy.name.clone(),
                format!("{:.1}", branchy.overall_accuracy),
                "Co",
                ms,
                j,
            ));
            // HGNAS + best partition.
            let part = best_partition(
                &models::hgnas().arch,
                &profile,
                &sys,
                &SimConfig::single_frame(),
                PartitionObjective::Latency,
            );
            rows.push((
                "HGNAS+Partition".to_string(),
                "92.2".to_string(),
                "Co",
                part.report.frame_latency_s * 1e3,
                part.report.device_energy_j,
            ));
            // GCoDE.
            let best = best_gcode(profile, SurrogateTask::ModelNet40, &sys, 7);
            let surrogate = SurrogateAccuracy::new(SurrogateTask::ModelNet40);
            let (ms, j) = measure(&best.arch, &profile, &sys);
            rows.push((
                "GCoDE".to_string(),
                format!(
                    "{:.1} (mAcc {:.1})",
                    best.accuracy * 100.0,
                    surrogate.balanced_accuracy(&best.arch) * 100.0
                ),
                "Co",
                ms,
                j,
            ));

            for (name, acc, mode, ms, j) in rows {
                print_row(
                    &[
                        name,
                        acc,
                        mode.to_string(),
                        format!("{ms:8.1} ({:5.1}x)", base_ms / ms),
                        format!("{j:6.2} ({:5.1}%)", (1.0 - j / base_j) * 100.0),
                    ],
                    &widths,
                );
            }
        }
    }
    println!(
        "\nShape checks: GCoDE should hold the lowest latency/energy per system; \
         Edge-Only should lag Co on slow links; speedups grow on the Pi device."
    );
}
