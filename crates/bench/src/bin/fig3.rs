//! Figure 3: execution-time breakdown of DGCNN by operation class on the
//! four platforms, for ModelNet40-scale and MR-scale inputs.

use gcode_baselines::models;
use gcode_bench::{header, print_row};
use gcode_core::arch::WorkloadProfile;
use gcode_core::cost::trace;
use gcode_hardware::Processor;

fn breakdown(profile: &WorkloadProfile, proc: &Processor) -> (f64, f64, f64) {
    let dgcnn = models::dgcnn();
    let traced = trace(&dgcnn.arch, profile);
    let mut knn = 0.0;
    let mut agg = 0.0;
    let mut combine = 0.0;
    for t in &traced {
        let s = proc.latency(&t.cost);
        match t.op.kind() {
            gcode_core::op::OpKind::Sample => knn += s,
            gcode_core::op::OpKind::Aggregate => agg += s,
            _ => combine += s,
        }
    }
    let total = knn + agg + combine;
    (knn / total * 100.0, agg / total * 100.0, combine / total * 100.0)
}

fn main() {
    let platforms = [
        Processor::raspberry_pi_4b(),
        Processor::jetson_tx2(),
        Processor::intel_i7_7700(),
        Processor::nvidia_gtx_1060(),
    ];
    let widths = [18usize, 10, 12, 14];
    for (label, profile) in
        [("ModelNet40", WorkloadProfile::modelnet40()), ("MR", WorkloadProfile::mr())]
    {
        header(&format!("Fig. 3 — DGCNN execution-time breakdown on {label} (%)"));
        print_row(
            ["platform", "KNN", "Aggregate", "Combine+rest"].map(String::from).as_ref(),
            &widths,
        );
        for p in &platforms {
            let (knn, agg, rest) = breakdown(&profile, p);
            print_row(
                &[
                    p.name.clone(),
                    format!("{knn:6.1}"),
                    format!("{agg:6.1}"),
                    format!("{rest:6.1}"),
                ],
                &widths,
            );
        }
    }
    println!(
        "\nShape checks: KNN dominates TX2 and GTX 1060 on ModelNet40; \
         Aggregate tops the i7; the Pi is spread out; on MR the dense \
         Combine side dominates the i7."
    );
}
