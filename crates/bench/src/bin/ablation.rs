//! Ablations beyond the paper's figures (DESIGN.md §5 extension hooks):
//!
//! 1. pipelined engine vs frame-serial execution (throughput);
//! 2. transfer compression on/off (latency of split designs);
//! 3. λ sweep quantified by Pareto hypervolume (Fig. 8's knob, scalarized);
//! 4. adaptive runtime dispatch vs a pinned design under a fluctuating link;
//! 5. multi-fidelity search: the analytic→sim cascade backend vs a pure
//!    simulator-in-the-loop search (expensive evaluations saved, memo-cache
//!    effectiveness, end score);
//! 6. closing the loop: a three-tier analytic→sim→engine fidelity ladder
//!    that prices escalated candidates on the live TCP runtime, vs the
//!    pure-sim search, with live p50/p95/p99 frame latencies in the
//!    `SearchReport`;
//! 7. persistent edge pool: per-candidate spawn/connect/teardown vs one
//!    warm pair hot-swapping plans (`SwapPlan` control frames) — deploy
//!    throughput and p50 per mode;
//! 8. edge fleet: Measured-tier deploy throughput as the same candidate
//!    batch is pulled off the shared morsel queue by 1 → 2 → 4 loopback
//!    pools (`EdgeFleet`) under a 10 Mbps uplink cap, uniform and with a
//!    10× per-candidate frame-count skew, warm cost reported separately;
//! 9. search-as-a-service: an in-process `gcode-serve` daemon at 1, 8 and
//!    64 concurrent tenant sessions over one warm fleet — sustained
//!    sessions/sec and p99 time-to-winner per concurrency level;
//! 10. plan wire encoding and the persistent evaluation cache: hot-swap
//!     throughput and bytes-per-plan of the binary columnar encoding vs
//!     one batched `SwapPlanBatch` deploy over the same capped uplink
//!     (the retired JSON `SwapPlan` appears only as a static byte-size
//!     reference), plus cold-search vs warm-restart wall time against one
//!     `--cache-file` log;
//! 11. the plan-optimizer pipeline: the same candidate list priced on the
//!     live engine with `--optimize on` vs `off` under a 10 Mbps uplink
//!     cap — deploys/s, p50/p95 deltas, per-pass counters and wire bytes
//!     per plan (optimized plans must never be larger);
//! 12. trace-driven scenario replay: a four-segment `ScenarioTrace`
//!     (steady → 10× arrival burst → 10→1 Mbps uplink degrade →
//!     mid-stream constraint flip) replayed on one warm dispatcher pool.
//!     Deadlines and arrival rates are derived from a probed per-frame
//!     service time, so the burst outruns the service rate on any host —
//!     the burst segment's deadline hit rate must land strictly below
//!     the steady segment's.
//!
//! Sections 5–12 also emit a `BENCH_eval.json` perf artifact (wall time,
//! evaluation counts and deploy throughput per mode; schema documented in
//! `docs/BENCHMARKS.md`) next to the working directory. `--quick` runs
//! only sections 7–12 at tiny frame counts and still emits the artifact —
//! the CI smoke path.

use gcode_baselines::models;
use gcode_bench::{
    header, print_row, run_gcode_search, run_gcode_search_reported, table_search_config,
};
use gcode_core::arch::{Architecture, WorkloadProfile};
use gcode_core::cachelog::open_shared;
use gcode_core::eval::backend::{AnalyticBackend, CascadeBackend, EvalBackend};
use gcode_core::eval::FleetStats;
use gcode_core::eval::{Evaluator, Objective, SearchSession};
use gcode_core::op::{Op, SampleFn};
use gcode_core::pareto::{front_of, hypervolume};
use gcode_core::search::{RandomSearch, SearchConfig};
use gcode_core::space::DesignSpace;
use gcode_core::surrogate::{SurrogateAccuracy, SurrogateTask};
use gcode_core::zoo::ArchitectureZoo;
use gcode_engine::{
    encode_frame, lower_and_optimize, EdgeFleet, EdgePool, EngineBackend, EngineDispatcher,
    ExecutionPlan, FleetSpec, Frame, OptimizeOptions, ScenarioRunner, SessionSpec, SessionTask,
};
use gcode_graph::datasets::{PointCloudDataset, Sample};
use gcode_hardware::SystemConfig;
use gcode_nn::agg::AggMode;
use gcode_nn::pool::PoolMode;
use gcode_nn::seq::WeightBank;
use gcode_server::{SearchServer, ServerClient, ServerConfig};
use gcode_sim::{simulate, simulate_adaptive, BandwidthTrace, SimBackend, SimConfig};
use std::time::{Duration, Instant};

/// Deploy-throughput numbers from the pooled-vs-spawn ablation.
struct PoolAblation {
    candidates: usize,
    spawn_wall_s: f64,
    pooled_wall_s: f64,
    spawn_p50_s: f64,
    pooled_p50_s: f64,
    pool_spawns: u64,
}

/// Distinct split candidates so neither mode benefits from memoization.
fn pool_candidates(n: usize) -> Vec<Architecture> {
    (0..n)
        .map(|i| {
            Architecture::new(vec![
                Op::Sample(SampleFn::Knn { k: 4 + i % 3 }),
                Op::Aggregate(AggMode::Max),
                Op::Combine { dim: 8 + 8 * (i % 4) },
                Op::Communicate,
                Op::GlobalPool(PoolMode::Max),
            ])
        })
        .collect()
}

/// Section 7 body: price the same candidate list on a fresh pair per
/// candidate vs one persistent hot-swapping pair, and time both.
fn run_pool_ablation(candidates: usize, frames: usize, warmup: usize) -> PoolAblation {
    let sys = SystemConfig::tx2_to_i7(40.0);
    let ds = PointCloudDataset::generate(6, 20, 4, 47);
    let accuracy = |a: &Architecture| 0.8 + 0.001 * a.len() as f64;
    let archs = pool_candidates(candidates);

    let spawn_backend = EngineBackend::new(ds.samples().to_vec(), 4, sys.clone(), accuracy)
        .with_frames(frames)
        .with_warmup(warmup);
    let spawn_start = Instant::now();
    for arch in &archs {
        spawn_backend.evaluate(arch);
    }
    let spawn_wall_s = spawn_start.elapsed().as_secs_f64();

    let pooled_backend = EngineBackend::new(ds.samples().to_vec(), 4, sys, accuracy)
        .with_frames(frames)
        .with_warmup(warmup)
        .with_persistent_edge();
    let pooled_start = Instant::now();
    for arch in &archs {
        pooled_backend.evaluate(arch);
    }
    let pooled_wall_s = pooled_start.elapsed().as_secs_f64();

    PoolAblation {
        candidates,
        spawn_wall_s,
        pooled_wall_s,
        spawn_p50_s: spawn_backend.measured_profile().p50_s,
        pooled_p50_s: pooled_backend.measured_profile().p50_s,
        pool_spawns: pooled_backend.pool_spawns(),
    }
}

/// The router uplink cap the fleet ablation measures under, in Mbit/s —
/// the paper's constrained-bandwidth regime. Under the cap a candidate's
/// wall is dominated by paced transfer time (sleep, not compute), which
/// is exactly the work N pools can overlap; unthrottled loopback pools
/// on a small host measure core count, not scheduling.
const FLEET_UPLINK_MBPS: f64 = 10.0;

/// One fleet size's deploy-throughput numbers from the scaling ablation.
struct FleetPoint {
    pools: usize,
    wall_s: f64,
    stats: FleetStats,
}

/// Section 8 results: the same uniform batch at 1/2/4 pools, a
/// ~10×-skewed batch at 1 vs 4 pools, and the pool spawn/warm wall kept
/// outside every timed window.
struct FleetAblation {
    candidates: usize,
    points: Vec<FleetPoint>,
    skew_candidates: usize,
    skew_points: Vec<FleetPoint>,
    warmup_s: f64,
}

impl FleetAblation {
    fn speedup_4v1(points: &[FleetPoint]) -> f64 {
        let wall =
            |pools: usize| points.iter().find(|p| p.pools == pools).map_or(f64::NAN, |p| p.wall_s);
        wall(1) / wall(4).max(1e-12)
    }

    /// Uniform-batch 4-pool speedup over 1 pool.
    fn uniform_speedup_4v1(&self) -> f64 {
        Self::speedup_4v1(&self.points)
    }

    /// Skewed-batch 4-pool speedup over 1 pool.
    fn skew_speedup_4v1(&self) -> f64 {
        Self::speedup_4v1(&self.skew_points)
    }
}

/// Section 8 body: price one uniform candidate batch through
/// `EngineBackend` fleets of 1, 2 and 4 loopback pools under the
/// [`FLEET_UPLINK_MBPS`] router cap and time each pass, then push a
/// skewed batch (per-candidate frame counts varying 10×, heavy streams
/// last) directly through `EdgeFleet::run_batch_streams` at 1 vs 4
/// pools. Distinct candidates (no memoization anywhere on this path) and
/// identical seeding mean every fleet size measures exactly the same
/// work — only the pool count changes. Spawning pools is setup, not
/// scaling: every fleet is warmed before its clock starts and the total
/// spawn/warm wall is reported separately as `fleet_warmup_s` so the
/// cost stays visible instead of polluting the curve.
fn run_fleet_ablation(quick: bool) -> FleetAblation {
    let (candidates, frames) = if quick { (8, 24) } else { (16, 32) };
    let (lights, heavies, light_frames) = if quick { (6, 4, 8) } else { (12, 12, 10) };

    let sys = SystemConfig::tx2_to_i7(40.0);
    let ds = PointCloudDataset::generate(6, 20, 4, 47);
    let accuracy = |a: &Architecture| 0.8 + 0.001 * a.len() as f64;
    let archs = pool_candidates(candidates);
    let mut warmup_s = 0.0;
    let points = [1usize, 2, 4]
        .iter()
        .map(|&pools| {
            let backend = EngineBackend::new(ds.samples().to_vec(), 4, sys.clone(), accuracy)
                .with_frames(frames)
                .with_uplink_mbps(FLEET_UPLINK_MBPS)
                .with_fleet(FleetSpec::loopback(pools));
            // A pools-sized slice is enough to spawn every pool (the
            // fleet never spawns more pools than pending candidates).
            let warm_start = Instant::now();
            backend.evaluate_batch(&archs[..pools]);
            warmup_s += warm_start.elapsed().as_secs_f64();
            let start = Instant::now();
            backend.evaluate_batch(&archs);
            let wall_s = start.elapsed().as_secs_f64();
            let stats = backend.fleet_stats().expect("fleet configured");
            FleetPoint { pools, wall_s, stats }
        })
        .collect();

    // Skewed batch: light candidates first, 10×-heavier streams last —
    // the shape that starves a static contiguous shard (one tail shard
    // inherits every heavy) and that the pull model balances by
    // construction, each pool grabbing the next candidate as it frees up.
    let skew_total = lights + heavies;
    let skew_archs = pool_candidates(skew_total);
    let plans: Vec<ExecutionPlan> =
        skew_archs.iter().map(ExecutionPlan::from_architecture).collect();
    let stream_of = |frames: usize| -> Vec<Sample> {
        (0..frames).map(|i| ds.samples()[i % ds.samples().len()].clone()).collect()
    };
    let streams_owned: Vec<Vec<Sample>> = (0..skew_total)
        .map(|i| stream_of(if i < lights { light_frames } else { 10 * light_frames }))
        .collect();
    let streams: Vec<&[Sample]> = streams_owned.iter().map(Vec::as_slice).collect();
    let skew_points = [1usize, 4]
        .iter()
        .map(|&pools| {
            let mut fleet = EdgeFleet::new(FleetSpec::loopback(pools), 4, 71, 23)
                .with_uplink_mbps(FLEET_UPLINK_MBPS);
            let warm_start = Instant::now();
            let warmed = fleet.run_batch_streams(&plans[..pools], &streams[..pools]);
            assert!(warmed.iter().all(Result::is_ok), "skew warm pass deploys");
            warmup_s += warm_start.elapsed().as_secs_f64();
            let start = Instant::now();
            let outcomes = fleet.run_batch_streams(&plans, &streams);
            let wall_s = start.elapsed().as_secs_f64();
            assert!(outcomes.iter().all(Result::is_ok), "skewed batch deploys");
            let stats = fleet.stats();
            fleet.shutdown().expect("clean fleet shutdown");
            FleetPoint { pools, wall_s, stats }
        })
        .collect();

    FleetAblation { candidates, points, skew_candidates: skew_total, skew_points, warmup_s }
}

fn print_fleet_ablation(fleet: &FleetAblation) {
    header("Ablation 8 — edge fleet: Measured-tier throughput vs pool count");
    println!(
        "  uniform batch ({} candidates, {:.0} Mbps uplink):",
        fleet.candidates, FLEET_UPLINK_MBPS
    );
    let base = fleet.points[0].wall_s;
    for p in &fleet.points {
        println!(
            "  {} pool{}: {:2} deployments in {:7.1} ms  ({:6.1} deploys/s, {:4.2}x vs 1 pool)  {} failures",
            p.pools,
            if p.pools == 1 { " " } else { "s" },
            fleet.candidates,
            p.wall_s * 1e3,
            fleet.candidates as f64 / p.wall_s.max(1e-12),
            base / p.wall_s.max(1e-12),
            p.stats.failures()
        );
    }
    println!("  skewed batch ({} candidates, 10x frame-count spread):", fleet.skew_candidates);
    let skew_base = fleet.skew_points[0].wall_s;
    for p in &fleet.skew_points {
        println!(
            "  {} pool{}: {:2} deployments in {:7.1} ms  ({:6.1} deploys/s, {:4.2}x vs 1 pool)  {} failures",
            p.pools,
            if p.pools == 1 { " " } else { "s" },
            fleet.skew_candidates,
            p.wall_s * 1e3,
            fleet.skew_candidates as f64 / p.wall_s.max(1e-12),
            skew_base / p.wall_s.max(1e-12),
            p.stats.failures()
        );
    }
    println!("  pool spawn/warm cost, outside every timed window: {:7.1} ms", fleet.warmup_s * 1e3);
}

/// One concurrency level of the search-service ablation.
struct ServePoint {
    concurrency: usize,
    wall_s: f64,
    p99_time_to_winner_s: f64,
}

/// Section 9 results: the same session spec served at 1/8/64 tenants.
struct ServeAblation {
    points: Vec<ServePoint>,
}

/// Section 9 body: one resident `gcode-serve` daemon (two warm loopback
/// pools, eight concurrent session slots), hammered by 1, 8 and 64
/// client threads. Each tenant runs the full protocol — handshake, open
/// with backoff on `Busy`, submit, poll to the winner — and times its
/// own submit→result span; the batch wall clock gives sustained
/// sessions/sec. Seeds differ per tenant so no result is memoized into
/// another's, and the daemon stays up across all three levels: the
/// 8- and 64-tenant points run over pools the 1-tenant point warmed.
fn run_serve_ablation(iterations: usize, zoo_size: usize) -> ServeAblation {
    let server = SearchServer::start(
        "127.0.0.1:0",
        ServerConfig::new(FleetSpec::loopback(2)).with_max_sessions(8),
    )
    .expect("serve ablation server starts");
    let addr = server.addr();
    let points = [1usize, 8, 64]
        .iter()
        .map(|&concurrency| {
            let start = Instant::now();
            let mut times: Vec<f64> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..concurrency)
                    .map(|i| {
                        scope.spawn(move || {
                            let spec = SessionSpec {
                                config: SearchConfig {
                                    iterations,
                                    zoo_size,
                                    seed: 1000 * concurrency as u64 + i as u64,
                                    ..SearchConfig::default()
                                },
                                objective: Objective::new(0.25, 1.0, 5.0),
                                task: if i % 2 == 0 {
                                    SessionTask::ModelNet40
                                } else {
                                    SessionTask::Mr
                                },
                                measure_zoo: true,
                                scenario: None,
                            };
                            let mut client = ServerClient::connect(addr).expect("handshake");
                            let id = client
                                .open_session_retry(&spec, 10_000, Duration::from_millis(5))
                                .expect("admitted");
                            let submitted = Instant::now();
                            client.submit(id).expect("submitted");
                            let outcome = client
                                .wait_result(id, Duration::from_millis(5), Duration::from_secs(300))
                                .expect("winner");
                            client.close_session(id).expect("closed");
                            assert!(outcome.report.measured.is_some(), "zoo was measured");
                            submitted.elapsed().as_secs_f64()
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("tenant thread")).collect()
            });
            let wall_s = start.elapsed().as_secs_f64();
            times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
            let p99 = times[((times.len() as f64 * 0.99).ceil() as usize - 1).min(times.len() - 1)];
            ServePoint { concurrency, wall_s, p99_time_to_winner_s: p99 }
        })
        .collect();
    server.shutdown().expect("serve ablation server shuts down");
    ServeAblation { points }
}

fn print_serve_ablation(serve: &ServeAblation) {
    header("Ablation 9 — search-as-a-service: concurrent tenants on one warm fleet");
    for p in &serve.points {
        println!(
            "  {:2} tenant{}: {:2} sessions in {:7.1} ms  ({:6.2} sessions/s)  p99 time-to-winner {:7.1} ms",
            p.concurrency,
            if p.concurrency == 1 { " " } else { "s" },
            p.concurrency,
            p.wall_s * 1e3,
            p.concurrency as f64 / p.wall_s.max(1e-12),
            p.p99_time_to_winner_s * 1e3
        );
    }
}

/// Section 10 numbers: the wire economics of plan deploys (binary
/// per-plan vs batched, with the retired JSON encoding's byte size as a
/// static reference) and the persistent evaluation cache (cold search vs
/// warm restart).
struct WireCacheAblation {
    plans: usize,
    binary_wall_s: f64,
    batched_wall_s: f64,
    json_bytes_per_plan: f64,
    binary_bytes_per_plan: f64,
    cache_candidates: usize,
    cold_wall_s: f64,
    warm_wall_s: f64,
    warm_log_hits: u64,
}

impl WireCacheAblation {
    fn binary_swaps_per_s(&self) -> f64 {
        self.plans as f64 / self.binary_wall_s.max(1e-12)
    }
    fn batched_deploys_per_s(&self) -> f64 {
        self.plans as f64 / self.batched_wall_s.max(1e-12)
    }
}

/// Section 10 body. Swap throughput: the same plan list hot-swapped onto
/// one warm [`EdgePool`], every control frame paced by the
/// [`FLEET_UPLINK_MBPS`] router cap — so wire bytes, the thing the
/// columnar encoding shrinks, cost real wall time. The batched pass
/// deploys the whole list through `SwapPlanBatch` frames on the already
/// warm pair. The retired JSON `SwapPlan` (kind 1) no longer ships, so it
/// appears only as a static serde-JSON byte size for scale. Cache: the
/// same candidate list priced twice on a live persistent-edge
/// [`EngineBackend`] against one cache-log file — the first pass deploys
/// and writes through, the second must answer every candidate from the
/// file without spawning a pair.
fn run_wire_cache_ablation(quick: bool) -> WireCacheAblation {
    let plan_count = if quick { 12 } else { 32 };
    let plans: Vec<ExecutionPlan> =
        pool_candidates(plan_count).iter().map(ExecutionPlan::from_architecture).collect();

    // Framed wire size (+4 for the length prefix; JSON +1 for its kind
    // byte — a reference figure, the path itself is gone).
    let json_bytes: usize = plans
        .iter()
        .map(|p| serde_json::to_string(p).expect("plan serializes").len() + 1 + 4)
        .sum();
    let binary_bytes: usize =
        plans.iter().map(|p| encode_frame(&Frame::SwapPlan(Box::new(p.clone()))).len() + 4).sum();

    let mut binary_pool = EdgePool::spawn(WeightBank::new(4, 5), 9)
        .expect("binary pool spawns")
        .with_uplink_mbps(FLEET_UPLINK_MBPS);
    let start = Instant::now();
    for p in &plans {
        binary_pool.deploy(p.clone()).expect("binary swap");
    }
    let binary_wall_s = start.elapsed().as_secs_f64();

    // Batched deploy on the same warm pair: the full queue in one control
    // round-trip per 64-plan chunk (frame budget 0 — deploy cost only).
    let entries: Vec<(ExecutionPlan, u32)> = plans.iter().map(|p| (p.clone(), 0)).collect();
    let start = Instant::now();
    binary_pool.deploy_batch(entries).expect("batched deploy");
    let batched_wall_s = start.elapsed().as_secs_f64();
    binary_pool.shutdown().expect("clean binary pool shutdown");

    // Cold vs warm against one cache file, on the live engine.
    let dir = std::env::temp_dir().join("gcode-ablation-cache");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join(format!("warm-restart-{}.gclg", if quick { "quick" } else { "full" }));
    let _ = std::fs::remove_file(&path);
    let sys = SystemConfig::tx2_to_i7(40.0);
    let ds = PointCloudDataset::generate(6, 20, 4, 47);
    let accuracy = |a: &Architecture| 0.8 + 0.001 * a.len() as f64;
    let archs = pool_candidates(if quick { 6 } else { 12 });
    let frames = if quick { 2 } else { 4 };

    let cold = EngineBackend::new(ds.samples().to_vec(), 4, sys.clone(), accuracy)
        .with_frames(frames)
        .with_warmup(1)
        .with_persistent_edge()
        .with_cache_log(open_shared(&path).expect("cache file opens"));
    let start = Instant::now();
    for a in &archs {
        cold.evaluate(a);
    }
    let cold_wall_s = start.elapsed().as_secs_f64();

    let warm = EngineBackend::new(ds.samples().to_vec(), 4, sys, accuracy)
        .with_frames(frames)
        .with_warmup(1)
        .with_persistent_edge()
        .with_cache_log(open_shared(&path).expect("cache file reopens"));
    let start = Instant::now();
    for a in &archs {
        warm.evaluate(a);
    }
    let warm_wall_s = start.elapsed().as_secs_f64();
    let warm_log_hits = warm.log_hits();
    assert_eq!(
        warm_log_hits as usize,
        archs.len(),
        "a warm restart must replay every candidate from the cache file"
    );
    assert_eq!(warm.pool_spawns(), 0, "a fully warm restart never spawns a pair");
    let _ = std::fs::remove_file(&path);

    WireCacheAblation {
        plans: plan_count,
        binary_wall_s,
        batched_wall_s,
        json_bytes_per_plan: json_bytes as f64 / plan_count as f64,
        binary_bytes_per_plan: binary_bytes as f64 / plan_count as f64,
        cache_candidates: archs.len(),
        cold_wall_s,
        warm_wall_s,
        warm_log_hits,
    }
}

fn print_wire_cache_ablation(w: &WireCacheAblation) {
    header("Ablation 10 — plan wire encoding and the persistent evaluation cache");
    println!(
        "  hot-swap encoding ({} plans over one warm pair, {:.0} Mbps uplink):",
        w.plans, FLEET_UPLINK_MBPS
    );
    println!(
        "    retired JSON v1: {:>7}              ({:6.1} bytes/plan framed, size reference only)",
        "—", w.json_bytes_per_plan
    );
    println!(
        "    binary v2 swaps: {:7.1} deploys/s  ({:6.1} bytes/plan framed, {:.2}x smaller)",
        w.binary_swaps_per_s(),
        w.binary_bytes_per_plan,
        w.json_bytes_per_plan / w.binary_bytes_per_plan.max(1e-12)
    );
    println!(
        "    batched binary:  {:7.1} deploys/s  ({:.2}x vs per-plan binary round-trips)",
        w.batched_deploys_per_s(),
        w.batched_deploys_per_s() / w.binary_swaps_per_s().max(1e-12)
    );
    println!("  persistent cache ({} candidates on the live engine):", w.cache_candidates);
    println!(
        "    cold search {:7.1} ms  →  warm restart {:7.1} ms  ({} replayed from file, {:.1}x faster)",
        w.cold_wall_s * 1e3,
        w.warm_wall_s * 1e3,
        w.warm_log_hits,
        w.cold_wall_s / w.warm_wall_s.max(1e-12)
    );
}

/// Section 11 numbers: the plan-optimizer pipeline priced on the live
/// engine — optimizer on vs off over the same candidates and uplink cap.
struct OptimizerAblation {
    candidates: usize,
    on_wall_s: f64,
    off_wall_s: f64,
    on_p50_s: f64,
    off_p50_s: f64,
    on_p95_s: f64,
    off_p95_s: f64,
    on_bytes_per_plan: f64,
    off_bytes_per_plan: f64,
    ops_elided: u64,
    ops_fused: u64,
    splits_moved: u64,
    modeled_bytes_saved: u64,
}

impl OptimizerAblation {
    fn on_deploys_per_s(&self) -> f64 {
        self.candidates as f64 / self.on_wall_s.max(1e-12)
    }
    fn off_deploys_per_s(&self) -> f64 {
        self.candidates as f64 / self.off_wall_s.max(1e-12)
    }
}

/// Candidates the optimizer can visibly bite on: an `Identity` op to
/// elide, an adjacent same-side `Aggregate`+`Combine` pair per side to
/// fuse (the pair straddling the split must be left alone), and a split
/// the cost model may re-place.
fn optimizer_candidates(n: usize) -> Vec<Architecture> {
    (0..n)
        .map(|i| {
            Architecture::new(vec![
                Op::Sample(SampleFn::Knn { k: 4 + i % 3 }),
                Op::Identity,
                Op::Aggregate(AggMode::Max),
                Op::Combine { dim: 8 + 8 * (i % 4) },
                Op::Communicate,
                Op::Aggregate(AggMode::Mean),
                Op::Combine { dim: 16 },
                Op::GlobalPool(PoolMode::Max),
            ])
        })
        .collect()
}

/// Section 11 body: price the same candidate list on a warm
/// persistent-edge pair twice — optimizer pipeline on, then off — under
/// the [`FLEET_UPLINK_MBPS`] cap, and read the per-pass counters back.
/// The wire-size comparison is static: the same candidates lowered both
/// ways through `lower_and_optimize` and framed.
fn run_optimizer_ablation(quick: bool) -> OptimizerAblation {
    let candidates = if quick { 6 } else { 16 };
    let frames = if quick { 2 } else { 4 };
    let archs = optimizer_candidates(candidates);
    let sys = SystemConfig::tx2_to_1060(FLEET_UPLINK_MBPS);
    let ds = PointCloudDataset::generate(6, 20, 4, 47);
    let accuracy = |a: &Architecture| 0.8 + 0.001 * a.len() as f64;

    let framed =
        |plan: &ExecutionPlan| encode_frame(&Frame::SwapPlan(Box::new(plan.clone()))).len() + 4;
    let mut on_bytes = 0usize;
    let mut off_bytes = 0usize;
    for a in &archs {
        let (opt, _) = lower_and_optimize(a, &OptimizeOptions::default());
        on_bytes += framed(&opt);
        off_bytes += framed(&ExecutionPlan::from_architecture(a));
    }

    let run = |optimize: bool| {
        let backend = EngineBackend::new(ds.samples().to_vec(), 4, sys.clone(), accuracy)
            .with_frames(frames)
            .with_warmup(1)
            .with_uplink_mbps(FLEET_UPLINK_MBPS)
            .with_persistent_edge()
            .with_optimize(optimize);
        let start = Instant::now();
        for a in &archs {
            backend.evaluate(a);
        }
        let wall_s = start.elapsed().as_secs_f64();
        let profile = backend.measured_profile();
        (wall_s, profile.p50_s, profile.p95_s, backend.optimizer_stats())
    };
    let (on_wall_s, on_p50_s, on_p95_s, stats) = run(true);
    let (off_wall_s, off_p50_s, off_p95_s, _) = run(false);

    OptimizerAblation {
        candidates,
        on_wall_s,
        off_wall_s,
        on_p50_s,
        off_p50_s,
        on_p95_s,
        off_p95_s,
        on_bytes_per_plan: on_bytes as f64 / candidates as f64,
        off_bytes_per_plan: off_bytes as f64 / candidates as f64,
        ops_elided: stats.ops_elided(),
        ops_fused: stats.ops_fused(),
        splits_moved: stats.splits_moved(),
        modeled_bytes_saved: stats.modeled_bytes_saved(),
    }
}

fn print_optimizer_ablation(o: &OptimizerAblation) {
    header("Ablation 11 — plan optimizer on/off on the live engine (10 Mbps uplink)");
    println!(
        "  optimizer on:  {:2} candidates in {:7.1} ms  ({:6.1} deploys/s)  p50 {:.3} ms  p95 {:.3} ms  ({:5.1} wire bytes/plan)",
        o.candidates,
        o.on_wall_s * 1e3,
        o.on_deploys_per_s(),
        o.on_p50_s * 1e3,
        o.on_p95_s * 1e3,
        o.on_bytes_per_plan
    );
    println!(
        "  optimizer off: {:2} candidates in {:7.1} ms  ({:6.1} deploys/s)  p50 {:.3} ms  p95 {:.3} ms  ({:5.1} wire bytes/plan)",
        o.candidates,
        o.off_wall_s * 1e3,
        o.off_deploys_per_s(),
        o.off_p50_s * 1e3,
        o.off_p95_s * 1e3,
        o.off_bytes_per_plan
    );
    println!(
        "  passes: {} ops elided, {} fused, {} splits moved, {} modeled bytes saved; p50 delta {:+.3} ms, p95 delta {:+.3} ms",
        o.ops_elided,
        o.ops_fused,
        o.splits_moved,
        o.modeled_bytes_saved,
        (o.on_p50_s - o.off_p50_s) * 1e3,
        (o.on_p95_s - o.off_p95_s) * 1e3
    );
}

/// Section 12 numbers: per-segment deadline economics of one replayed
/// [`ScenarioTrace`](gcode_core::eval::scenario::ScenarioTrace).
struct ScenarioAblation {
    /// Probed per-frame service time every rate below is derived from.
    service_p50_s: f64,
    /// The trace-wide sojourn deadline, `12.5×` the probed service time.
    deadline_s: f64,
    steady_hit_rate: f64,
    burst_hit_rate: f64,
    degraded_hit_rate: f64,
    flip_hit_rate: f64,
    /// Frame-weighted measured accuracy across every segment.
    measured_accuracy: f64,
    /// Plan hot-swaps over the whole trace (initial deploy + flip = 2).
    swap_count: u64,
    reports: Vec<gcode_core::eval::scenario::ScenarioReport>,
}

/// Section 12 body: build a four-segment trace — steady cadence, a 10×
/// arrival burst, a 10→1 Mbps uplink degrade, and a latency-constraint
/// flip onto the local design — and replay it on one warm dispatcher
/// pool over real held-out samples.
///
/// The physics are host-independent by construction: a short probe run
/// measures the warm pair's real per-frame service time `s`, then the
/// steady segment arrives every `5s` (no queueing), the burst every
/// `0.5s` (queue grows ~`0.5s` per frame), and the deadline sits at
/// `12.5s`. The burst backlog blows through the deadline within a dozen
/// frames on any machine, so its hit rate lands strictly below steady's.
fn run_scenario_ablation(quick: bool) -> ScenarioAblation {
    use gcode_core::eval::scenario::{ArrivalSpec, ScenarioSegment, ScenarioTrace};
    use gcode_core::search::ScoredArch;
    use gcode_core::zoo::RuntimeConstraint;

    let (steady_frames, burst_frames) = if quick { (16, 128) } else { (32, 256) };

    let entry = |latency_s: f64, accuracy: f64, split: bool| {
        let mut ops = vec![Op::Sample(SampleFn::Knn { k: 8 }), Op::Aggregate(AggMode::Max)];
        if split {
            ops.push(Op::Communicate);
        }
        ops.push(Op::Combine { dim: 16 });
        ops.push(Op::GlobalPool(PoolMode::Max));
        ScoredArch {
            arch: Architecture::new(ops),
            score: accuracy,
            accuracy,
            latency_s,
            energy_j: latency_s,
        }
    };
    let zoo = ArchitectureZoo::new(vec![
        entry(0.080, 0.93, true),  // accurate co-inference design
        entry(0.010, 0.90, false), // fast local design
    ]);
    let ds = PointCloudDataset::generate(8, 24, 4, 47);
    let mut dispatcher = EngineDispatcher::new(zoo, WeightBank::new(4, 12));
    dispatcher.attach_pool(34).expect("scenario pool spawns");

    // Probe the warm pair's real service time on the plan the trace
    // opens with; a 16-frame median rides out spawn-adjacent jitter.
    dispatcher.dispatch_live(RuntimeConstraint::none()).expect("probe deploy");
    let probe: Vec<Sample> =
        (0..16).map(|i| ds.samples()[i % ds.samples().len()].clone()).collect();
    let (_, stats) = dispatcher.run_live(&probe).expect("probe stream");
    let mut lat = stats.frame_latencies_s.clone();
    lat.sort_by(f64::total_cmp);
    let service_p50_s = lat[lat.len() / 2].max(50e-6);

    let deadline_s = 12.5 * service_p50_s;
    let steady_fps = 1.0 / (5.0 * service_p50_s);
    let trace = ScenarioTrace::new("ablation-12", 47)
        .with_segment(
            ScenarioSegment::new(
                "steady",
                0.0,
                steady_frames,
                ArrivalSpec::Periodic { fps: steady_fps },
                deadline_s,
            )
            .with_uplink_mbps(FLEET_UPLINK_MBPS),
        )
        .with_segment(ScenarioSegment::new(
            "burst-10x",
            10.0,
            burst_frames,
            ArrivalSpec::Periodic { fps: 10.0 * steady_fps },
            deadline_s,
        ))
        .with_segment(
            ScenarioSegment::new(
                "uplink-degraded",
                20.0,
                steady_frames,
                ArrivalSpec::Periodic { fps: steady_fps },
                deadline_s,
            )
            .with_uplink_mbps(1.0),
        )
        .with_segment(
            ScenarioSegment::new(
                "constraint-flip",
                30.0,
                steady_frames,
                ArrivalSpec::Periodic { fps: steady_fps },
                deadline_s,
            )
            .with_constraint(RuntimeConstraint::latency(0.020)),
        );

    let reports =
        ScenarioRunner::new(&mut dispatcher, ds.samples()).run(&trace).expect("trace replays");
    dispatcher.detach_pool().expect("scenario pool shuts down");

    let hit = |label: &str| {
        reports
            .iter()
            .find(|r| r.label == label)
            .unwrap_or_else(|| panic!("segment `{label}` missing from scenario reports"))
            .deadline_hit_rate
    };
    let total_frames: u64 = reports.iter().map(|r| r.frames).sum();
    let measured_accuracy =
        reports.iter().map(|r| r.measured_accuracy * r.frames as f64).sum::<f64>()
            / total_frames.max(1) as f64;
    ScenarioAblation {
        service_p50_s,
        deadline_s,
        steady_hit_rate: hit("steady"),
        burst_hit_rate: hit("burst-10x"),
        degraded_hit_rate: hit("uplink-degraded"),
        flip_hit_rate: hit("constraint-flip"),
        measured_accuracy,
        swap_count: reports.iter().map(|r| r.swaps).sum(),
        reports,
    }
}

fn print_scenario_ablation(s: &ScenarioAblation) {
    header("Ablation 12 — scenario replay: steady → 10x burst → degraded uplink → constraint flip");
    println!(
        "  probed service p50 {:.3} ms → deadline {:.3} ms, steady {:.0} fps, burst {:.0} fps",
        s.service_p50_s * 1e3,
        s.deadline_s * 1e3,
        1.0 / (5.0 * s.service_p50_s),
        10.0 / (5.0 * s.service_p50_s)
    );
    for r in &s.reports {
        println!(
            "  [{:15}] {:3} frames  {} swap(s)  deadline hit {:5.1}%  acc {:5.1}%  p95 {:.3} ms",
            r.label,
            r.frames,
            r.swaps,
            r.deadline_hit_rate * 100.0,
            r.measured_accuracy * 100.0,
            r.p95_s * 1e3
        );
    }
    println!(
        "  burst deadline hit rate lands strictly below steady: {:.1}% < {:.1}%  ({} swaps total)",
        s.burst_hit_rate * 100.0,
        s.steady_hit_rate * 100.0,
        s.swap_count
    );
}

fn print_pool_ablation(pool: &PoolAblation) {
    header("Ablation 7 — persistent edge pool: per-candidate spawn vs hot-swap");
    println!(
        "  per-candidate spawn: {:2} deployments in {:7.1} ms  ({:6.1} deploys/s)  p50 {:.3} ms",
        pool.candidates,
        pool.spawn_wall_s * 1e3,
        pool.candidates as f64 / pool.spawn_wall_s.max(1e-12),
        pool.spawn_p50_s * 1e3
    );
    println!(
        "  pooled hot-swap:     {:2} deployments in {:7.1} ms  ({:6.1} deploys/s)  p50 {:.3} ms  ({} pair spawned)",
        pool.candidates,
        pool.pooled_wall_s * 1e3,
        pool.candidates as f64 / pool.pooled_wall_s.max(1e-12),
        pool.pooled_p50_s * 1e3,
        pool.pool_spawns
    );
    println!(
        "  deployment overhead amortized: {:.2}x faster end-to-end, p50 delta {:+.3} ms",
        pool.spawn_wall_s / pool.pooled_wall_s.max(1e-12),
        (pool.pooled_p50_s - pool.spawn_p50_s) * 1e3
    );
}

fn main() {
    if std::env::args().any(|a| a == "--quick") {
        // CI smoke: sections 7–12 only, tiny budgets, artifact still
        // emitted (search-mode fields zeroed).
        let pool = run_pool_ablation(4, 2, 1);
        print_pool_ablation(&pool);
        let fleet = run_fleet_ablation(true);
        print_fleet_ablation(&fleet);
        let serve = run_serve_ablation(6, 2);
        print_serve_ablation(&serve);
        let wire = run_wire_cache_ablation(true);
        print_wire_cache_ablation(&wire);
        let opt = run_optimizer_ablation(true);
        print_optimizer_ablation(&opt);
        assert!(
            opt.ops_elided > 0,
            "the quick candidates carry Identity ops the pipeline must elide"
        );
        let scen = run_scenario_ablation(true);
        print_scenario_ablation(&scen);
        assert!(
            scen.burst_hit_rate < scen.steady_hit_rate,
            "burst deadline hit rate must land strictly below steady: {:.3} vs {:.3}",
            scen.burst_hit_rate,
            scen.steady_hit_rate
        );
        write_bench(
            &EvalBench::with_pool(&pool)
                .with_fleet(&fleet)
                .with_serve(&serve)
                .with_wire(&wire)
                .with_opt(&opt)
                .with_scenario(&scen),
        );
        return;
    }
    let profile = WorkloadProfile::modelnet40();

    // ——— 1. Pipelining ———
    header("Ablation 1 — pipelined engine vs frame-serial (64-frame stream)");
    let widths = [26usize, 14, 14, 10];
    print_row(
        ["architecture", "serial fps", "pipelined fps", "gain"].map(String::from).as_ref(),
        &widths,
    );
    for b in [models::branchy_gnn(), models::dgcnn()] {
        let sys = SystemConfig::tx2_to_i7(40.0);
        let arch = if b.arch.num_communicates() == 0 {
            models::as_edge_only(&b.arch)
        } else {
            b.arch.clone()
        };
        let serial = simulate(
            &arch,
            &profile,
            &sys,
            &SimConfig { frames: 64, pipelined: false, ..SimConfig::default() },
        );
        let piped =
            simulate(&arch, &profile, &sys, &SimConfig { frames: 64, ..SimConfig::default() });
        print_row(
            &[
                b.name.clone(),
                format!("{:8.1}", serial.fps),
                format!("{:8.1}", piped.fps),
                format!("{:5.2}x", piped.fps / serial.fps),
            ],
            &widths,
        );
    }

    // ——— 2. Compression ———
    header("Ablation 2 — link compression on/off (BRANCHY split, 10 Mbps)");
    let b = models::branchy_gnn();
    for (label, ratio) in [("zlib-like on (1.6x)", 1.6), ("off (1.0x)", 1.0)] {
        let mut sys = SystemConfig::tx2_to_i7(10.0);
        sys.link.compression_ratio = ratio;
        let r = simulate(&b.arch, &profile, &sys, &SimConfig::single_frame());
        println!(
            "  {label:<22} latency {:7.1} ms  (comm {:5.1} ms)",
            r.frame_latency_s * 1e3,
            r.comm_s * 1e3
        );
    }

    // ——— 3. λ sweep, hypervolume ———
    header("Ablation 3 — λ sweep: Pareto hypervolume of the searched zoo");
    let sys = SystemConfig::tx2_to_i7(40.0);
    let dgcnn_anchor = simulate(&models::dgcnn().arch, &profile, &sys, &SimConfig::single_frame());
    for lambda in [0.05, 0.25, 1.0] {
        let (cfg, mut objective) =
            table_search_config(dgcnn_anchor.frame_latency_s, dgcnn_anchor.device_energy_j, 13);
        objective.lambda = lambda;
        let result = run_gcode_search(profile, SurrogateTask::ModelNet40, &sys, &cfg, &objective);
        let front = front_of(&result.zoo);
        let hv = hypervolume(&front, 0.85, dgcnn_anchor.frame_latency_s);
        let best_acc = front.iter().map(|p| p.accuracy).fold(0.0, f64::max);
        let best_lat = front.iter().map(|p| p.latency_s).fold(f64::INFINITY, f64::min);
        println!(
            "  λ={lambda:<5} front size {:2}  best acc {:5.2}%  best latency {:6.1} ms  hypervolume {hv:.5}",
            front.len(),
            best_acc * 100.0,
            best_lat * 1e3
        );
    }

    // ——— 4. Adaptive dispatch ———
    header("Ablation 4 — runtime dispatcher under a fluctuating link (40↔2 Mbps)");
    // The zoo pairs the winners of two searches run for the two link
    // regimes — the dispatcher's job is to pick per-frame between them.
    let (cfg40, obj40) =
        table_search_config(dgcnn_anchor.frame_latency_s, dgcnn_anchor.device_energy_j, 19);
    let win40 = run_gcode_search(profile, SurrogateTask::ModelNet40, &sys, &cfg40, &obj40);
    let mut congested = sys.clone();
    congested.link.bandwidth_mbps = 2.0;
    let (cfg2, obj2) =
        table_search_config(dgcnn_anchor.frame_latency_s, dgcnn_anchor.device_energy_j, 23);
    let win2 = run_gcode_search(profile, SurrogateTask::ModelNet40, &congested, &cfg2, &obj2);
    let mut entries: Vec<_> = win40.zoo.iter().take(3).cloned().collect();
    entries.extend(win2.zoo.iter().take(3).cloned());
    let zoo = ArchitectureZoo::new(entries);
    let trace = BandwidthTrace::square_wave(40.0, 2.0, 0.25, 120.0);
    let slo = 0.020;
    let adaptive = simulate_adaptive(&zoo, &profile, &sys, &trace, 64, slo, false);
    let pinned = simulate_adaptive(&zoo, &profile, &sys, &trace, 64, slo, true);
    println!(
        "  adaptive: SLO hit {:5.1}%  mean {:5.1} ms  switches {}",
        adaptive.slo_hit_rate * 100.0,
        adaptive.mean_latency_s * 1e3,
        adaptive.switches
    );
    println!(
        "  pinned:   SLO hit {:5.1}%  mean {:5.1} ms",
        pinned.slo_hit_rate * 100.0,
        pinned.mean_latency_s * 1e3
    );

    // ——— 5. Multi-fidelity cascade ———
    header("Ablation 5 — multi-fidelity search: analytic→sim cascade vs pure sim");
    let (cfg5, obj5) =
        table_search_config(dgcnn_anchor.frame_latency_s, dgcnn_anchor.device_energy_j, 29);

    let pure_start = Instant::now();
    let (pure, pure_report) =
        run_gcode_search_reported(profile, SurrogateTask::ModelNet40, &sys, &cfg5, &obj5);
    let pure_wall_s = pure_start.elapsed().as_secs_f64();
    println!(
        "  pure sim:  best score {:6.3}  sim evals {:5}  cache hit rate {:4.1}%",
        pure.best().map_or(-1.0, |b| b.score),
        pure_report.cache.misses,
        pure_report.cache.hit_rate() * 100.0
    );

    let space = DesignSpace::paper(profile);
    let s_cheap = SurrogateAccuracy::new(SurrogateTask::ModelNet40);
    let cheap = AnalyticBackend {
        profile,
        sys: sys.clone(),
        accuracy_fn: move |a: &Architecture| s_cheap.overall_accuracy(a),
    };
    let s_dear = SurrogateAccuracy::new(SurrogateTask::ModelNet40);
    let expensive = SimBackend {
        profile,
        sys: sys.clone(),
        sim: SimConfig::single_frame(),
        accuracy_fn: move |a: &Architecture| s_dear.overall_accuracy(a),
    };
    let cascade = CascadeBackend::new(&cheap, &expensive, obj5).with_keep_frac(0.25);
    let cascade_start = Instant::now();
    let mut session = SearchSession::new(&space, &cascade).with_objective(obj5);
    let result = session.run(&RandomSearch::new(cfg5));
    let cascade_wall_s = cascade_start.elapsed().as_secs_f64();
    let report = session.report(cascade.name(), &result);
    let stats = cascade.stats();
    println!(
        "  cascade:   best score {:6.3}  sim evals {:5}  (screened {} cheaply, {:4.1}% escalated)  cache hit rate {:4.1}%",
        result.best().map_or(-1.0, |b| b.score),
        stats.expensive_evals,
        stats.cheap_evals,
        stats.escalation_rate() * 100.0,
        report.cache.hit_rate() * 100.0
    );
    println!(
        "  sim evaluations saved vs pure sim: {} of {}",
        pure_report.cache.misses.saturating_sub(stats.expensive_evals),
        pure_report.cache.misses
    );
    println!(
        "\n  cascade search report (JSON):\n  {}",
        serde_json::to_string(&report).expect("report serializes")
    );

    // ——— 6. Closing the loop: the measured tier ———
    header("Ablation 6 — fidelity ladder with the live engine: analytic→sim→engine");
    // Smaller budget: the top tier deploys real TCP pairs per candidate.
    let cfg6 = gcode_core::search::SearchConfig { iterations: 200, seed: 31, ..cfg5 };
    let (pure6, pure6_report) =
        run_gcode_search_reported(profile, SurrogateTask::ModelNet40, &sys, &cfg6, &obj5);

    let s_screen = SurrogateAccuracy::new(SurrogateTask::ModelNet40);
    let screen = AnalyticBackend {
        profile,
        sys: sys.clone(),
        accuracy_fn: move |a: &Architecture| s_screen.overall_accuracy(a),
    };
    let s_mid = SurrogateAccuracy::new(SurrogateTask::ModelNet40);
    let mid = SimBackend {
        profile,
        sys: sys.clone(),
        sim: SimConfig::single_frame(),
        accuracy_fn: move |a: &Architecture| s_mid.overall_accuracy(a),
    };
    let s_top = SurrogateAccuracy::new(SurrogateTask::ModelNet40);
    let frames = PointCloudDataset::generate(8, 24, 4, 11);
    let engine = EngineBackend::new(frames.samples().to_vec(), 4, sys.clone(), move |a| {
        s_top.overall_accuracy(a)
    })
    .with_frames(4)
    .with_warmup(1)
    .with_uplink_mbps(40.0);
    let ladder =
        CascadeBackend::ladder(vec![&screen, &mid, &engine], obj5).with_keep_fracs(&[0.25, 0.5]);
    let ladder_start = Instant::now();
    let mut session6 = SearchSession::new(&space, &ladder).with_objective(obj5);
    let result6 = session6.run(&RandomSearch::new(cfg6));
    let ladder_wall_s = ladder_start.elapsed().as_secs_f64();
    let measured = engine.measured_profile();
    let report6 = session6.report(ladder.name(), &result6).with_measured(measured);
    println!(
        "  pure sim ({} iters): best score {:6.3}  sim evals {:5}",
        cfg6.iterations,
        pure6.best().map_or(-1.0, |b| b.score),
        pure6_report.cache.misses
    );
    println!(
        "  ladder:              best score {:6.3}  tier evals:",
        result6.best().map_or(-1.0, |b| b.score)
    );
    for t in ladder.tier_stats() {
        println!(
            "    {:<10} {:?} fidelity, cost {:>6.1}x → {} evals",
            t.name, t.fidelity, t.cost_hint, t.evals
        );
    }
    println!(
        "  live engine: {} measured frames  p50 {:.2} ms  p95 {:.2} ms  p99 {:.2} ms  ({} bytes, {} errors)",
        measured.frames,
        measured.p50_s * 1e3,
        measured.p95_s * 1e3,
        measured.p99_s * 1e3,
        measured.bytes_sent,
        measured.errors
    );
    println!(
        "\n  ladder search report (JSON):\n  {}",
        serde_json::to_string(&report6).expect("report serializes")
    );

    // ——— 7. Persistent edge pool ———
    let pool = run_pool_ablation(8, 4, 1);
    print_pool_ablation(&pool);

    // ——— 8. Edge fleet ———
    // A batch wide and deep enough for scheduling to matter: 16 uniform
    // candidates at 32 paced frames each keep every pool's uplink busy,
    // and the skewed batch stresses the pull model's load balancing.
    let fleet = run_fleet_ablation(false);
    print_fleet_ablation(&fleet);
    assert!(
        fleet.uniform_speedup_4v1() >= 2.0,
        "uniform 4-pool speedup regressed below 2x: {:.2}x",
        fleet.uniform_speedup_4v1()
    );
    assert!(
        fleet.skew_speedup_4v1() >= 3.0,
        "skewed 4-pool speedup regressed below 3x: {:.2}x",
        fleet.skew_speedup_4v1()
    );

    // ——— 9. Search-as-a-service ———
    let serve = run_serve_ablation(24, 2);
    print_serve_ablation(&serve);

    // ——— 10. Wire encoding + persistent cache ———
    let wire = run_wire_cache_ablation(false);
    print_wire_cache_ablation(&wire);
    assert!(
        wire.binary_bytes_per_plan < wire.json_bytes_per_plan,
        "binary plan encoding regressed: {:.1} bytes/plan vs JSON's {:.1}",
        wire.binary_bytes_per_plan,
        wire.json_bytes_per_plan
    );
    assert!(
        wire.batched_deploys_per_s() >= 1.3 * wire.binary_swaps_per_s(),
        "batched deploys regressed below 1.3x the per-plan binary baseline: {:.1}/s vs {:.1}/s",
        wire.batched_deploys_per_s(),
        wire.binary_swaps_per_s()
    );

    // ——— 11. Plan optimizer on/off ———
    let opt = run_optimizer_ablation(false);
    print_optimizer_ablation(&opt);
    assert!(opt.ops_elided > 0, "the candidates carry Identity ops the pipeline must elide");
    assert!(
        opt.on_bytes_per_plan <= opt.off_bytes_per_plan,
        "optimized plans must never be larger on the wire: {:.1} vs {:.1} bytes/plan",
        opt.on_bytes_per_plan,
        opt.off_bytes_per_plan
    );

    // ——— 12. Scenario replay ———
    let scen = run_scenario_ablation(false);
    print_scenario_ablation(&scen);
    assert!(
        scen.burst_hit_rate < scen.steady_hit_rate,
        "burst deadline hit rate must land strictly below steady: {:.3} vs {:.3}",
        scen.burst_hit_rate,
        scen.steady_hit_rate
    );
    assert!(scen.swap_count >= 2, "the trace must deploy once and swap on the constraint flip");

    // ——— Perf artifact ———
    let tiers = ladder.tier_stats();
    write_bench(&EvalBench {
        pure_sim_wall_s: pure_wall_s,
        pure_sim_evals: pure_report.cache.misses,
        cascade_wall_s,
        cascade_sim_evals: stats.expensive_evals,
        ladder_wall_s,
        ladder_sim_evals: tiers[1].evals,
        ladder_engine_evals: tiers[2].evals,
        measured_p50_s: measured.p50_s,
        measured_p95_s: measured.p95_s,
        measured_p99_s: measured.p99_s,
        ..EvalBench::with_pool(&pool)
            .with_fleet(&fleet)
            .with_serve(&serve)
            .with_wire(&wire)
            .with_opt(&opt)
            .with_scenario(&scen)
    });
}

fn write_bench(bench: &EvalBench) {
    let json = serde_json::to_string_pretty(bench).expect("bench artifact serializes");
    std::fs::write("BENCH_eval.json", &json).expect("write BENCH_eval.json");
    println!("\n  perf artifact written to BENCH_eval.json");
}

/// The `BENCH_eval.json` payload: wall time and evaluation economics of
/// the three search modes, the live engine's latency percentiles, the
/// pooled-vs-spawn deployment throughput, and the fleet scaling curve.
/// Every key is documented in `docs/BENCHMARKS.md` — update both together.
#[derive(Default, serde::Serialize, serde::Deserialize)]
struct EvalBench {
    pure_sim_wall_s: f64,
    pure_sim_evals: u64,
    cascade_wall_s: f64,
    cascade_sim_evals: u64,
    ladder_wall_s: f64,
    ladder_sim_evals: u64,
    ladder_engine_evals: u64,
    measured_p50_s: f64,
    measured_p95_s: f64,
    measured_p99_s: f64,
    spawn_deploys_per_s: f64,
    pooled_deploys_per_s: f64,
    spawn_p50_s: f64,
    pooled_p50_s: f64,
    pooled_p50_delta_s: f64,
    pool_spawns: u64,
    fleet_deploys_per_s_1: f64,
    fleet_deploys_per_s_2: f64,
    fleet_deploys_per_s_4: f64,
    fleet_speedup_4v1: f64,
    fleet_skew_deploys_per_s_1: f64,
    fleet_skew_deploys_per_s_4: f64,
    fleet_skew_speedup_4v1: f64,
    fleet_warmup_s: f64,
    fleet_pool_failures: u64,
    serve_sessions_per_s: f64,
    serve_p99_time_to_winner_s_1: f64,
    serve_p99_time_to_winner_s_8: f64,
    serve_p99_time_to_winner_s_64: f64,
    swap_round_trips_per_s_binary: f64,
    swap_bytes_per_plan_json: f64,
    swap_bytes_per_plan_binary: f64,
    batched_deploys_per_s: f64,
    cold_wall_s: f64,
    warm_restart_wall_s: f64,
    opt_deploys_per_s_on: f64,
    opt_deploys_per_s_off: f64,
    opt_p50_delta_s: f64,
    opt_p95_delta_s: f64,
    opt_ops_elided: u64,
    opt_ops_fused: u64,
    opt_splits_moved: u64,
    opt_modeled_bytes_saved: u64,
    scenario_deadline_hit_rate_steady: f64,
    scenario_deadline_hit_rate_burst: f64,
    scenario_deadline_hit_rate_degraded: f64,
    scenario_deadline_hit_rate_flip: f64,
    scenario_measured_accuracy: f64,
    scenario_swap_count: u64,
}

impl EvalBench {
    /// A zeroed payload carrying only the section-7 pool numbers — the
    /// full run fills the search-mode fields on top via struct update.
    fn with_pool(pool: &PoolAblation) -> Self {
        Self {
            spawn_deploys_per_s: pool.candidates as f64 / pool.spawn_wall_s.max(1e-12),
            pooled_deploys_per_s: pool.candidates as f64 / pool.pooled_wall_s.max(1e-12),
            spawn_p50_s: pool.spawn_p50_s,
            pooled_p50_s: pool.pooled_p50_s,
            pooled_p50_delta_s: pool.pooled_p50_s - pool.spawn_p50_s,
            pool_spawns: pool.pool_spawns,
            ..Self::default()
        }
    }

    /// Folds the section-8 fleet scaling numbers in: the uniform curve,
    /// the skewed-batch speedup and the out-of-window warm cost.
    fn with_fleet(mut self, fleet: &FleetAblation) -> Self {
        let per_s = |candidates: usize, p: &FleetPoint| candidates as f64 / p.wall_s.max(1e-12);
        for p in &fleet.points {
            match p.pools {
                1 => self.fleet_deploys_per_s_1 = per_s(fleet.candidates, p),
                2 => self.fleet_deploys_per_s_2 = per_s(fleet.candidates, p),
                4 => self.fleet_deploys_per_s_4 = per_s(fleet.candidates, p),
                other => unreachable!("unexpected fleet size {other}"),
            }
        }
        self.fleet_speedup_4v1 = self.fleet_deploys_per_s_4 / self.fleet_deploys_per_s_1.max(1e-12);
        for p in &fleet.skew_points {
            match p.pools {
                1 => self.fleet_skew_deploys_per_s_1 = per_s(fleet.skew_candidates, p),
                4 => self.fleet_skew_deploys_per_s_4 = per_s(fleet.skew_candidates, p),
                other => unreachable!("unexpected skew fleet size {other}"),
            }
        }
        self.fleet_skew_speedup_4v1 =
            self.fleet_skew_deploys_per_s_4 / self.fleet_skew_deploys_per_s_1.max(1e-12);
        self.fleet_warmup_s = fleet.warmup_s;
        self.fleet_pool_failures =
            fleet.points.iter().chain(&fleet.skew_points).map(|p| p.stats.failures()).sum();
        self
    }

    /// Folds the section-9 serve numbers in: sustained throughput at the
    /// widest concurrency, p99 time-to-winner per level.
    fn with_serve(mut self, serve: &ServeAblation) -> Self {
        for p in &serve.points {
            let per_s = p.concurrency as f64 / p.wall_s.max(1e-12);
            match p.concurrency {
                1 => self.serve_p99_time_to_winner_s_1 = p.p99_time_to_winner_s,
                8 => self.serve_p99_time_to_winner_s_8 = p.p99_time_to_winner_s,
                64 => {
                    self.serve_p99_time_to_winner_s_64 = p.p99_time_to_winner_s;
                    self.serve_sessions_per_s = per_s;
                }
                other => unreachable!("unexpected serve concurrency {other}"),
            }
        }
        self
    }

    /// Folds the section-10 numbers in: swap throughput and wire bytes
    /// per encoding, batched deploy throughput, and the cold-vs-warm
    /// cache walls.
    fn with_wire(mut self, wire: &WireCacheAblation) -> Self {
        self.swap_round_trips_per_s_binary = wire.binary_swaps_per_s();
        self.swap_bytes_per_plan_json = wire.json_bytes_per_plan;
        self.swap_bytes_per_plan_binary = wire.binary_bytes_per_plan;
        self.batched_deploys_per_s = wire.batched_deploys_per_s();
        self.cold_wall_s = wire.cold_wall_s;
        self.warm_restart_wall_s = wire.warm_wall_s;
        self
    }

    /// Folds the section-11 optimizer on/off numbers in: deploy
    /// throughput per mode, latency deltas, and the per-pass counters.
    fn with_opt(mut self, opt: &OptimizerAblation) -> Self {
        self.opt_deploys_per_s_on = opt.on_deploys_per_s();
        self.opt_deploys_per_s_off = opt.off_deploys_per_s();
        self.opt_p50_delta_s = opt.on_p50_s - opt.off_p50_s;
        self.opt_p95_delta_s = opt.on_p95_s - opt.off_p95_s;
        self.opt_ops_elided = opt.ops_elided;
        self.opt_ops_fused = opt.ops_fused;
        self.opt_splits_moved = opt.splits_moved;
        self.opt_modeled_bytes_saved = opt.modeled_bytes_saved;
        self
    }

    /// Folds the section-12 scenario replay numbers in: per-segment
    /// deadline hit rates, frame-weighted measured accuracy, and the
    /// trace's total plan hot-swaps.
    fn with_scenario(mut self, scen: &ScenarioAblation) -> Self {
        self.scenario_deadline_hit_rate_steady = scen.steady_hit_rate;
        self.scenario_deadline_hit_rate_burst = scen.burst_hit_rate;
        self.scenario_deadline_hit_rate_degraded = scen.degraded_hit_rate;
        self.scenario_deadline_hit_rate_flip = scen.flip_hit_rate;
        self.scenario_measured_accuracy = scen.measured_accuracy;
        self.scenario_swap_count = scen.swap_count;
        self
    }
}
