//! Ablations beyond the paper's figures (DESIGN.md §5 extension hooks):
//!
//! 1. pipelined engine vs frame-serial execution (throughput);
//! 2. transfer compression on/off (latency of split designs);
//! 3. λ sweep quantified by Pareto hypervolume (Fig. 8's knob, scalarized);
//! 4. adaptive runtime dispatch vs a pinned design under a fluctuating link.

use gcode_baselines::models;
use gcode_bench::{header, print_row, run_gcode_search, table_search_config};
use gcode_core::arch::WorkloadProfile;
use gcode_core::pareto::{front_of, hypervolume};
use gcode_core::surrogate::SurrogateTask;
use gcode_core::zoo::ArchitectureZoo;
use gcode_hardware::SystemConfig;
use gcode_sim::{simulate, simulate_adaptive, BandwidthTrace, SimConfig};

fn main() {
    let profile = WorkloadProfile::modelnet40();

    // ——— 1. Pipelining ———
    header("Ablation 1 — pipelined engine vs frame-serial (64-frame stream)");
    let widths = [26usize, 14, 14, 10];
    print_row(
        ["architecture", "serial fps", "pipelined fps", "gain"].map(String::from).as_ref(),
        &widths,
    );
    for b in [models::branchy_gnn(), models::dgcnn()] {
        let sys = SystemConfig::tx2_to_i7(40.0);
        let arch = if b.arch.num_communicates() == 0 {
            models::as_edge_only(&b.arch)
        } else {
            b.arch.clone()
        };
        let serial = simulate(
            &arch,
            &profile,
            &sys,
            &SimConfig { frames: 64, pipelined: false, ..SimConfig::default() },
        );
        let piped =
            simulate(&arch, &profile, &sys, &SimConfig { frames: 64, ..SimConfig::default() });
        print_row(
            &[
                b.name.clone(),
                format!("{:8.1}", serial.fps),
                format!("{:8.1}", piped.fps),
                format!("{:5.2}x", piped.fps / serial.fps),
            ],
            &widths,
        );
    }

    // ——— 2. Compression ———
    header("Ablation 2 — link compression on/off (BRANCHY split, 10 Mbps)");
    let b = models::branchy_gnn();
    for (label, ratio) in [("zlib-like on (1.6x)", 1.6), ("off (1.0x)", 1.0)] {
        let mut sys = SystemConfig::tx2_to_i7(10.0);
        sys.link.compression_ratio = ratio;
        let r = simulate(&b.arch, &profile, &sys, &SimConfig::single_frame());
        println!(
            "  {label:<22} latency {:7.1} ms  (comm {:5.1} ms)",
            r.frame_latency_s * 1e3,
            r.comm_s * 1e3
        );
    }

    // ——— 3. λ sweep, hypervolume ———
    header("Ablation 3 — λ sweep: Pareto hypervolume of the searched zoo");
    let sys = SystemConfig::tx2_to_i7(40.0);
    let dgcnn_anchor = simulate(&models::dgcnn().arch, &profile, &sys, &SimConfig::single_frame());
    for lambda in [0.05, 0.25, 1.0] {
        let (cfg, mut objective) =
            table_search_config(dgcnn_anchor.frame_latency_s, dgcnn_anchor.device_energy_j, 13);
        objective.lambda = lambda;
        let result = run_gcode_search(profile, SurrogateTask::ModelNet40, &sys, &cfg, &objective);
        let front = front_of(&result.zoo);
        let hv = hypervolume(&front, 0.85, dgcnn_anchor.frame_latency_s);
        let best_acc = front.iter().map(|p| p.accuracy).fold(0.0, f64::max);
        let best_lat = front.iter().map(|p| p.latency_s).fold(f64::INFINITY, f64::min);
        println!(
            "  λ={lambda:<5} front size {:2}  best acc {:5.2}%  best latency {:6.1} ms  hypervolume {hv:.5}",
            front.len(),
            best_acc * 100.0,
            best_lat * 1e3
        );
    }

    // ——— 4. Adaptive dispatch ———
    header("Ablation 4 — runtime dispatcher under a fluctuating link (40↔2 Mbps)");
    // The zoo pairs the winners of two searches run for the two link
    // regimes — the dispatcher's job is to pick per-frame between them.
    let (cfg40, obj40) =
        table_search_config(dgcnn_anchor.frame_latency_s, dgcnn_anchor.device_energy_j, 19);
    let win40 = run_gcode_search(profile, SurrogateTask::ModelNet40, &sys, &cfg40, &obj40);
    let mut congested = sys.clone();
    congested.link.bandwidth_mbps = 2.0;
    let (cfg2, obj2) =
        table_search_config(dgcnn_anchor.frame_latency_s, dgcnn_anchor.device_energy_j, 23);
    let win2 = run_gcode_search(profile, SurrogateTask::ModelNet40, &congested, &cfg2, &obj2);
    let mut entries: Vec<_> = win40.zoo.iter().take(3).cloned().collect();
    entries.extend(win2.zoo.iter().take(3).cloned());
    let zoo = ArchitectureZoo::new(entries);
    let trace = BandwidthTrace::square_wave(40.0, 2.0, 0.25, 120.0);
    let slo = 0.020;
    let adaptive = simulate_adaptive(&zoo, &profile, &sys, &trace, 64, slo, false);
    let pinned = simulate_adaptive(&zoo, &profile, &sys, &trace, 64, slo, true);
    println!(
        "  adaptive: SLO hit {:5.1}%  mean {:5.1} ms  switches {}",
        adaptive.slo_hit_rate * 100.0,
        adaptive.mean_latency_s * 1e3,
        adaptive.switches
    );
    println!(
        "  pinned:   SLO hit {:5.1}%  mean {:5.1} ms",
        pinned.slo_hit_rate * 100.0,
        pinned.mean_latency_s * 1e3
    );
}
