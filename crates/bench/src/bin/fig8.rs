//! Figure 8: accuracy-vs-latency design-space exploration scatter with
//! Jetson TX2 as the device (i7 edge, 40 Mbps): GCoDE's zoo against every
//! baseline point, approaching the ideal top-left corner.

use gcode_baselines::models;
use gcode_baselines::partition::{best_partition, PartitionObjective};
use gcode_bench::{header, measure, print_row, run_gcode_search, table_search_config};
use gcode_core::arch::WorkloadProfile;
use gcode_core::surrogate::SurrogateTask;
use gcode_hardware::SystemConfig;
use gcode_sim::SimConfig;

fn main() {
    let profile = WorkloadProfile::modelnet40();
    let sys = SystemConfig::tx2_to_i7(40.0);
    let widths = [26usize, 10, 14];
    header("Fig. 8 — accuracy vs latency, TX2 ⇌ i7 @ 40 Mbps");
    print_row(["point", "OA (%)", "latency (ms)"].map(String::from).as_ref(), &widths);

    for b in [models::dgcnn(), models::optimized_dgcnn(), models::hgnas(), models::branchy_gnn()] {
        let (ms, _) = measure(&b.arch, &profile, &sys);
        print_row(
            &[b.name.clone(), format!("{:6.1}", b.overall_accuracy), format!("{ms:10.1}")],
            &widths,
        );
    }
    let part = best_partition(
        &models::hgnas().arch,
        &profile,
        &sys,
        &SimConfig::single_frame(),
        PartitionObjective::Latency,
    );
    print_row(
        &[
            "HGNAS+Partition".to_string(),
            "92.2".to_string(),
            format!("{:10.1}", part.report.frame_latency_s * 1e3),
        ],
        &widths,
    );

    // GCoDE: the whole zoo with λ sweep to trace the Pareto frontier.
    let dgcnn = models::dgcnn();
    let (anchor_ms, anchor_j) = measure(&dgcnn.arch, &profile, &sys);
    for (lambda, tag) in [(0.05, "λ=0.05"), (0.25, "λ=0.25"), (1.0, "λ=1.00")] {
        let (cfg, mut objective) = table_search_config(anchor_ms / 1e3, anchor_j, 13);
        objective.lambda = lambda;
        let result = run_gcode_search(profile, SurrogateTask::ModelNet40, &sys, &cfg, &objective);
        for (i, z) in result.zoo.iter().take(3).enumerate() {
            let (ms, _) = measure(&z.arch, &profile, &sys);
            print_row(
                &[
                    format!("GCoDE {tag} #{i}"),
                    format!("{:6.1}", z.accuracy * 100.0),
                    format!("{ms:10.1}"),
                ],
                &widths,
            );
        }
    }
    println!(
        "\nShape checks: GCoDE points push the Pareto frontier toward the \
         top-left; smaller λ trades latency for accuracy, larger λ the \
         reverse (paper Sec. 4.2)."
    );
}
