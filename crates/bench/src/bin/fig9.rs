//! Figure 9: latency-prediction accuracy of the system performance
//! predictor across the four co-inference systems — (a) fraction of
//! predictions within ±5%/±10% of the simulator's measurement, GCoDE's
//! GIN+enhanced features vs an HGNAS-style GCN+one-hot predictor;
//! (b) relative (pairwise ordering) accuracy.

use gcode_bench::{header, print_row};
use gcode_core::arch::{Architecture, WorkloadProfile};
use gcode_core::predictor::{
    pairwise_order_accuracy, within_bound_accuracy, Backbone, FeatureMode, LatencyPredictor,
    PredictorConfig,
};
use gcode_core::space::DesignSpace;
use gcode_hardware::SystemConfig;
use gcode_sim::{simulate, SimConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn sample_dataset(
    space: &DesignSpace,
    sys: &SystemConfig,
    n: usize,
    seed: u64,
) -> Vec<(Architecture, f64)> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let sim = SimConfig::single_frame();
    (0..n)
        .map(|_| {
            let (arch, _) = space.sample_valid(&mut rng, 100_000);
            let lat = simulate(&arch, &space.profile, sys, &sim).frame_latency_s;
            (arch, lat)
        })
        .collect()
}

fn main() {
    let profile = WorkloadProfile::modelnet40();
    let space = DesignSpace::paper(profile);
    // The paper samples 9K architectures (70/30 split); we scale down to
    // keep the generator interactive. Raise for tighter numbers.
    let (train_n, val_n) = (700, 300);
    let widths = [22usize, 10, 10, 12];

    header("Fig. 9 — predictor accuracy per system");
    print_row(
        ["system", "±5% (%)", "±10% (%)", "pairwise (%)"].map(String::from).as_ref(),
        &widths,
    );
    for (idx, sys) in SystemConfig::paper_systems(40.0).into_iter().enumerate() {
        let data = sample_dataset(&space, &sys, train_n + val_n, 100 + idx as u64);
        let (train, val) = data.split_at(train_n);
        for (label, features, backbone) in [
            ("GCoDE (GIN+enh)", FeatureMode::Enhanced, Backbone::Gin),
            ("HGNAS (GCN+1hot)", FeatureMode::OneHot, Backbone::Gcn),
        ] {
            let cfg = PredictorConfig {
                hidden: 64,
                features,
                backbone,
                seed: 42,
                ..PredictorConfig::default()
            };
            let p = LatencyPredictor::train(cfg, profile, sys.clone(), train);
            let preds: Vec<f64> = val.iter().map(|(a, _)| p.predict_s(a)).collect();
            let targets: Vec<f64> = val.iter().map(|&(_, t)| t).collect();
            print_row(
                &[
                    format!("{} {label}", short(&sys)),
                    format!("{:6.1}", 100.0 * within_bound_accuracy(&preds, &targets, 0.05)),
                    format!("{:6.1}", 100.0 * within_bound_accuracy(&preds, &targets, 0.10)),
                    format!("{:6.1}", 100.0 * pairwise_order_accuracy(&preds, &targets)),
                ],
                &widths,
            );
        }
    }
    println!(
        "\nShape checks: GIN+enhanced lands well above the GCN+one-hot \
         predictor on every system (paper: 72–85% within ±10%, ≥94.7% \
         pairwise for GCoDE)."
    );
}

fn short(sys: &SystemConfig) -> String {
    let d = if sys.device.name.contains("TX2") { "TX2" } else { "Pi" };
    let e = if sys.edge.name.contains("1060") { "1060" } else { "i7" };
    format!("{d}-{e}")
}
