//! Table 1: supported-feature comparison — a static documentation table;
//! each ✓ for GCoDE names the module of this repository implementing it.

fn main() {
    println!("=== Table 1 — Feature support comparison ===\n");
    let rows = [
        ("Design Automation", "✓ gcode-core::search", "✓", "✓", "✗"),
        ("Architecture Exploration", "✓ gcode-core::space", "✓", "✓", "✗"),
        ("Perf Awareness (single dev)", "✓ gcode-core::estimate", "✓", "✗", "✗"),
        ("Perf Awareness (heterog.)", "✓ gcode-core::predictor", "✗", "✓", "✗"),
        ("Perf Awareness (wireless)", "✓ gcode-hardware::Link", "✗", "✗", "✗"),
        ("Multi-Objective Optimization", "✓ eval::Objective::lambda", "✓", "✓", "✗"),
        ("Device-Edge Deployment", "✓ gcode-engine", "✗", "✗", "✓"),
        ("Runtime Optimization", "✓ gcode-core::zoo dispatcher", "✗", "✗", "✗"),
    ];
    println!(
        "{:<30} {:<32} {:^7} {:^7} {:^9}",
        "Feature", "GCoDE (this repo)", "HGNAS", "MaGNAS", "BRANCHY"
    );
    for (feature, gcode, hgnas, magnas, branchy) in rows {
        println!("{feature:<30} {gcode:<32} {hgnas:^7} {magnas:^7} {branchy:^9}");
    }
}
