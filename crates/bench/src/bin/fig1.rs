//! Figure 1: inference speed (fps) vs on-device energy (J) scatter for
//! DGCNN, BRANCHY-GNN, HGNAS and GCoDE on the Raspberry Pi 4B and Jetson
//! TX2 devices (Intel i7 / Nvidia 1060 as edge, 40 Mbps).

use gcode_baselines::models;
use gcode_bench::{best_gcode, header, measure, measure_fps, print_row};
use gcode_core::arch::WorkloadProfile;
use gcode_core::surrogate::SurrogateTask;
use gcode_hardware::SystemConfig;

fn main() {
    let profile = WorkloadProfile::modelnet40();
    let widths = [16usize, 12, 12];
    for (device_label, systems) in [
        ("Raspberry Pi 4B", [SystemConfig::pi_to_i7(40.0), SystemConfig::pi_to_1060(40.0)]),
        ("Jetson TX2", [SystemConfig::tx2_to_i7(40.0), SystemConfig::tx2_to_1060(40.0)]),
    ] {
        header(&format!("Fig. 1 — {device_label} (speed vs energy)"));
        print_row(["method", "fps", "energy (J)"].map(String::from).as_ref(), &widths);
        // Baselines run device-only (their published deployment); the best
        // edge choice is reflected in GCoDE's point, which picks its own
        // mapping. Use the i7-edge system for baseline energy bookkeeping.
        let sys = &systems[0];
        for b in [models::dgcnn(), models::branchy_gnn(), models::hgnas()] {
            let fps = measure_fps(&b.arch, &profile, sys);
            let (_, j) = measure(&b.arch, &profile, sys);
            print_row(&[b.name.clone(), format!("{fps:8.1}"), format!("{j:8.2}")], &widths);
        }
        // GCoDE: best of the two edge options for this device.
        let mut best_point = (0.0f64, f64::INFINITY);
        for sys in &systems {
            let best = best_gcode(profile, SurrogateTask::ModelNet40, sys, 5);
            let fps = measure_fps(&best.arch, &profile, sys);
            let (_, j) = measure(&best.arch, &profile, sys);
            if fps > best_point.0 {
                best_point = (fps, j);
            }
        }
        print_row(
            &[
                "GCoDE".to_string(),
                format!("{:8.1}", best_point.0),
                format!("{:8.2}", best_point.1),
            ],
            &widths,
        );
    }
    println!(
        "\nShape checks: GCoDE sits top-left (fast, frugal); DGCNN bottom-right; \
         the paper reports 44.9x speed and 98.2% energy gaps on the Pi."
    );
}
