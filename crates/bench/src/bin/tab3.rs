//! Table 3: MR text-classification comparison under 40 Mbps.

use gcode_baselines::models;
use gcode_baselines::partition::{best_partition, PartitionObjective};
use gcode_bench::{baseline_rows, best_gcode, header, measure, print_row};
use gcode_core::arch::WorkloadProfile;
use gcode_core::surrogate::SurrogateTask;
use gcode_hardware::SystemConfig;
use gcode_sim::SimConfig;

fn main() {
    let profile = WorkloadProfile::mr();
    let widths = [18usize, 10, 4, 14, 12];
    header("Table 3 — MR, 40 Mbps (latency ms, device energy J)");

    for sys in SystemConfig::paper_systems(40.0) {
        println!("\n--- {} ---", sys.label());
        print_row(
            ["method", "acc (%)", "mode", "latency (ms)", "energy (J)"].map(String::from).as_ref(),
            &widths,
        );
        let pnas = baseline_rows(models::pnas_text(), &profile, &sys);
        let mut rows: Vec<(String, f64, &str, f64, f64)> = vec![
            (
                "BRANCHY-GNN".into(),
                models::branchy_text().overall_accuracy,
                "Co",
                measure(&models::branchy_text().arch, &profile, &sys).0,
                measure(&models::branchy_text().arch, &profile, &sys).1,
            ),
            ("PNAS".into(), pnas.baseline.overall_accuracy, "D", pnas.device.0, pnas.device.1),
            ("PNAS".into(), pnas.baseline.overall_accuracy, "E", pnas.edge.0, pnas.edge.1),
        ];
        let part = best_partition(
            &models::pnas_text().arch,
            &profile,
            &sys,
            &SimConfig::single_frame(),
            PartitionObjective::Latency,
        );
        rows.push((
            "PNAS+Partition".into(),
            pnas.baseline.overall_accuracy,
            "Co",
            part.report.frame_latency_s * 1e3,
            part.report.device_energy_j,
        ));
        let best = best_gcode(profile, SurrogateTask::Mr, &sys, 11);
        let (ms, j) = measure(&best.arch, &profile, &sys);
        rows.push(("GCoDE".into(), best.accuracy * 100.0, "Co", ms, j));

        for (name, acc, mode, ms, j) in rows {
            print_row(
                &[
                    name,
                    format!("{acc:.1}"),
                    mode.to_string(),
                    format!("{ms:9.2}"),
                    format!("{j:9.3}"),
                ],
                &widths,
            );
        }
    }
    println!(
        "\nShape checks: GCoDE fastest and most energy-frugal per system; \
         Pi beats TX2 on this tiny-graph workload; partition helps PNAS but \
         less than co-design."
    );
}
