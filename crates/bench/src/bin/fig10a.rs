//! Figure 10(a): search efficiency — constraint-based random search (three
//! seeds) vs evolutionary search, with and without a valid initial
//! population. Prints the running max architecture score at checkpoints.

use gcode_bench::header;
use gcode_core::arch::{Architecture, WorkloadProfile};
use gcode_core::ea::{evolutionary_search, EaConfig};
use gcode_core::eval::Objective;
use gcode_core::search::{random_search, SearchConfig};
use gcode_core::space::DesignSpace;
use gcode_core::surrogate::{SurrogateAccuracy, SurrogateTask};
use gcode_hardware::SystemConfig;
use gcode_sim::{SimBackend, SimConfig};

const CHECKPOINTS: [usize; 8] = [1, 10, 50, 100, 200, 500, 1000, 2000];

fn evaluator(sys: &SystemConfig) -> SimBackend<impl Fn(&Architecture) -> f64 + Sync> {
    let surrogate = SurrogateAccuracy::new(SurrogateTask::ModelNet40);
    SimBackend {
        profile: WorkloadProfile::modelnet40(),
        sys: sys.clone(),
        sim: SimConfig::single_frame(),
        accuracy_fn: move |a: &Architecture| surrogate.overall_accuracy(a),
    }
}

fn print_series(label: &str, history: &[f64]) {
    let cells: Vec<String> = CHECKPOINTS
        .iter()
        .map(|&c| {
            history.get(c.min(history.len()) - 1).map_or("-".to_string(), |v| format!("{v:7.3}"))
        })
        .collect();
    println!("{label:<18} {}", cells.join(" "));
}

fn main() {
    let profile = WorkloadProfile::modelnet40();
    let space = DesignSpace::paper(profile);
    let sys = SystemConfig::tx2_to_i7(40.0);
    let cfg_base = SearchConfig { iterations: 2000, ..SearchConfig::default() };
    let objective = Objective::new(0.25, 0.15, 1.5);

    header("Fig. 10(a) — max architecture score vs search trials (TX2 ⇌ i7)");
    println!("{:<18} {}", "strategy", CHECKPOINTS.map(|c| format!("{c:>7}")).join(" "));
    for seed in [1u64, 2, 3] {
        let cfg = SearchConfig { seed, ..cfg_base };
        let eval = evaluator(&sys);
        let r = random_search(&space, &cfg, &objective, &eval);
        print_series(&format!("Random (seed {seed})"), &r.history);
    }
    for (label, valid_init) in [("EA", false), ("EA+Valid init", true)] {
        let cfg = SearchConfig { seed: 1, ..cfg_base };
        let ea = EaConfig { valid_init, ..EaConfig::default() };
        let eval = evaluator(&sys);
        let r = evolutionary_search(&space, &cfg, &ea, &objective, &eval);
        print_series(label, &r.history);
    }
    println!(
        "\nShape checks: the random series climb early and keep improving; \
         the EA series start near -1 (invalid offspring) and stall below \
         the random curves (paper Fig. 10a)."
    );
}
