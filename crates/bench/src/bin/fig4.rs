//! Figure 4: latency and device energy of the named DGCNN partitioning
//! schemes (All-Edge … All-Device) with Jetson TX2 as the device, for both
//! edges and both bandwidths.

use gcode_baselines::models;
use gcode_baselines::partition::fig4_schemes;
use gcode_bench::{header, print_row};
use gcode_core::arch::WorkloadProfile;
use gcode_hardware::SystemConfig;
use gcode_sim::{simulate, SimConfig};

fn main() {
    let profile = WorkloadProfile::modelnet40();
    let dgcnn = models::dgcnn().arch;
    let widths = [12usize, 14, 12];
    for bandwidth in [10.0, 40.0] {
        for sys in [SystemConfig::tx2_to_i7(bandwidth), SystemConfig::tx2_to_1060(bandwidth)] {
            header(&format!("Fig. 4 — DGCNN partitioning on {}", sys.label()));
            print_row(["scheme", "latency (ms)", "energy (J)"].map(String::from).as_ref(), &widths);
            let mut best_lat = ("", f64::INFINITY);
            let mut best_en = ("", f64::INFINITY);
            let mut rows = Vec::new();
            for (label, arch) in fig4_schemes(&dgcnn) {
                let r = simulate(&arch, &profile, &sys, &SimConfig::single_frame());
                let ms = r.frame_latency_s * 1e3;
                if ms < best_lat.1 {
                    best_lat = (label, ms);
                }
                if r.device_energy_j < best_en.1 {
                    best_en = (label, r.device_energy_j);
                }
                rows.push((label, ms, r.device_energy_j));
            }
            for (label, ms, j) in rows {
                let mark = if label == best_lat.0 {
                    " <- best latency"
                } else if label == best_en.0 {
                    " <- best energy"
                } else {
                    ""
                };
                print_row(
                    &[label.to_string(), format!("{ms:10.1}"), format!("{j:8.2}{mark}")],
                    &widths,
                );
            }
        }
    }
    println!(
        "\nShape checks: no fixed scheme wins everywhere — the best split \
         moves with bandwidth and edge choice, and even the best one stays \
         far from GCoDE's co-designed numbers (Tab. 2)."
    );
}
