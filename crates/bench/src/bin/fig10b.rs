//! Figure 10(b): predictor ablation — GIN+enhanced vs GIN+one-hot vs the
//! training-free LUT cost estimation vs GCN+enhanced, within-±10% accuracy
//! on the four systems (plus the LUT's pairwise-ordering accuracy, which
//! the paper reports separately as >88%).

use gcode_bench::{header, print_row};
use gcode_core::arch::{Architecture, WorkloadProfile};
use gcode_core::estimate::estimate_latency;
use gcode_core::predictor::{
    pairwise_order_accuracy, within_bound_accuracy, Backbone, FeatureMode, LatencyPredictor,
    PredictorConfig,
};
use gcode_core::space::DesignSpace;
use gcode_hardware::SystemConfig;
use gcode_sim::{simulate, SimConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let profile = WorkloadProfile::modelnet40();
    let space = DesignSpace::paper(profile);
    let (train_n, val_n) = (700, 300);
    let widths = [10usize, 16, 14, 10, 16];

    header("Fig. 10(b) — predictor ablation, ±10% accuracy (%)");
    print_row(
        ["system", "GIN+Enhanced", "GIN+One-hot", "LUT", "GCN+Enhanced"].map(String::from).as_ref(),
        &widths,
    );
    let mut lut_pairwise_all = Vec::new();
    for (idx, sys) in SystemConfig::paper_systems(40.0).into_iter().enumerate() {
        let mut rng = ChaCha8Rng::seed_from_u64(200 + idx as u64);
        let sim = SimConfig::single_frame();
        let data: Vec<(Architecture, f64)> = (0..train_n + val_n)
            .map(|_| {
                let (arch, _) = space.sample_valid(&mut rng, 100_000);
                let lat = simulate(&arch, &profile, &sys, &sim).frame_latency_s;
                (arch, lat)
            })
            .collect();
        let (train, val) = data.split_at(train_n);
        let targets: Vec<f64> = val.iter().map(|&(_, t)| t).collect();

        let mut cells = vec![short(&sys)];
        for (features, backbone) in
            [(FeatureMode::Enhanced, Backbone::Gin), (FeatureMode::OneHot, Backbone::Gin)]
        {
            cells.push(run_learned(features, backbone, profile, &sys, train, val, &targets));
        }
        // LUT: training-free cost estimation compared against measurement.
        let lut_preds: Vec<f64> =
            val.iter().map(|(a, _)| estimate_latency(a, &profile, &sys).total_s()).collect();
        cells.push(format!("{:6.1}", 100.0 * within_bound_accuracy(&lut_preds, &targets, 0.10)));
        lut_pairwise_all.push(100.0 * pairwise_order_accuracy(&lut_preds, &targets));
        cells.push(run_learned(
            FeatureMode::Enhanced,
            Backbone::Gcn,
            profile,
            &sys,
            train,
            val,
            &targets,
        ));
        print_row(&cells, &widths);
    }
    println!(
        "\nLUT pairwise-order accuracy per system: {} (paper: >88%)",
        lut_pairwise_all.iter().map(|v| format!("{v:.1}%")).collect::<Vec<_>>().join(", ")
    );
    println!(
        "Shape checks: GIN+Enhanced highest; LUT low on absolute values but \
         high on ordering; one-hot features lose most of the accuracy."
    );
}

fn run_learned(
    features: FeatureMode,
    backbone: Backbone,
    profile: WorkloadProfile,
    sys: &SystemConfig,
    train: &[(Architecture, f64)],
    val: &[(Architecture, f64)],
    targets: &[f64],
) -> String {
    let cfg =
        PredictorConfig { hidden: 64, features, backbone, seed: 9, ..PredictorConfig::default() };
    let p = LatencyPredictor::train(cfg, profile, sys.clone(), train);
    let preds: Vec<f64> = val.iter().map(|(a, _)| p.predict_s(a)).collect();
    format!("{:6.1}", 100.0 * within_bound_accuracy(&preds, targets, 0.10))
}

fn short(sys: &SystemConfig) -> String {
    let d = if sys.device.name.contains("TX2") { "TX2" } else { "Pi" };
    let e = if sys.edge.name.contains("1060") { "1060" } else { "i7" };
    format!("{d}-{e}")
}
